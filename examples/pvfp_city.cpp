/// \file pvfp_city.cpp
/// `pvfp_city` — city-scale batch ranking over a GIS tile directory:
///
///   pvfp_city --tiles <dir> --index <index.csv|.json> --out <out.jsonl>
///             [options]
///     --summary <path.csv>       also write the final ranking CSV
///     --topologies <m1xn1,...>   topologies per roof (default: 8x2)
///     --minutes <step>           time step in minutes (default: 15)
///     --stride <k>               suitability+evaluation step stride
///                                (default: 4 — production sampling)
///     --sectors <n>              horizon azimuth sectors (default: 72)
///     --seed <u64>               weather seed (default: 42)
///     --shard <N>                roofs prepared per shard (default: 32)
///     --tile-cache <N>           resident decoded tiles (default: 16)
///     --margin <m>               shading context margin (default: 8)
///     --resume                   continue an interrupted run
///     --no-shared-sky            regenerate weather per roof (baseline)
///     --shared-horizon           share horizon marching across roofs
///                                (macro-tile plane cache; uniform march
///                                distance instead of the per-roof cap)
///     --horizon-cache-mb <MiB>   resident horizon plane budget
///                                (default: 256)
///     --feeder-index <file>      radial feeder index (feeder.csv|.json)
///     --grid-plan <out.jsonl>    grid-aware sequential placement plan
///                                (requires --feeder-index)
///     --grid-summary <path.csv>  per-feeder cap/yield summary
///     --metrics-out <path.json>  write the obs metrics snapshot (enables
///                                telemetry; results stay byte-identical)
///     --trace-out <path.json>    write Chrome trace-event JSON (load in
///                                Perfetto); enables telemetry + spans
///
///   Fixture mode (writes a synthetic city, then exits):
///   pvfp_city --gen-fixture <dir> [--roofs N] [--seed u64]
///
/// A typical end-to-end smoke (also the CI determinism gate):
///   pvfp_city --gen-fixture /tmp/city --roofs 60
///   pvfp_city --tiles /tmp/city --index /tmp/city/index.csv
///             --out /tmp/city/results.jsonl --summary /tmp/city/rank.csv

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "pvfp/gis/city_runner.hpp"
#include "pvfp/gis/fixture.hpp"
#include "pvfp/grid/sequential_place.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/obs/trace.hpp"
#include "pvfp/util/cli.hpp"
#include "pvfp/util/error.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "pvfp_city: " << message << "\n"
              << "usage: pvfp_city --tiles DIR --index FILE --out OUT.jsonl\n"
              << "                 [--summary rank.csv] [--topologies 8x2,8x4]\n"
              << "                 [--minutes step] [--stride k] [--seed u64]\n"
              << "                 [--shard N] [--tile-cache N] [--margin m]\n"
              << "                 [--resume] [--no-shared-sky]\n"
              << "                 [--shared-horizon] [--horizon-cache-mb N]\n"
              << "                 [--feeder-index FILE --grid-plan OUT.jsonl\n"
              << "                  [--grid-summary grid.csv]]\n"
              << "                 [--metrics-out M.json] [--trace-out T.json]\n"
              << "   or: pvfp_city --gen-fixture DIR [--roofs N] [--seed u64]\n";
    std::exit(2);
}

std::vector<pvfp::pv::Topology> parse_topologies(const std::string& spec) {
    std::vector<pvfp::pv::Topology> topologies;
    std::istringstream list(spec);
    std::string item;
    while (std::getline(list, item, ',')) {
        int series = 0, strings = 0;
        char x = 0;
        std::istringstream is(item);
        if (!(is >> series >> x >> strings) || x != 'x' || series <= 0 ||
            strings <= 0)
            usage_error("bad topology '" + item + "' (want e.g. 8x2)");
        topologies.push_back({series, strings});
    }
    if (topologies.empty()) usage_error("empty --topologies list");
    return topologies;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;

    std::string tiles_dir, index_path, out_path, summary_path, fixture_dir;
    std::string feeder_path, grid_plan_path, grid_summary_path;
    std::string topologies = "8x2";
    int minutes = 15;
    long stride = 4;
    int sectors = 72;
    std::uint64_t seed = 42;
    bool seed_set = false;
    int shard = 32;
    int tile_cache = 16;
    double margin = 8.0;
    int fixture_roofs = 60;
    bool resume = false;
    bool shared_sky = true;
    bool shared_horizon = false;
    int horizon_cache_mb = 256;
    std::string metrics_out, trace_out;

    try {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage_error("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--tiles") tiles_dir = next();
        else if (arg == "--index") index_path = next();
        else if (arg == "--out") out_path = next();
        else if (arg == "--summary") summary_path = next();
        else if (arg == "--topologies") topologies = next();
        else if (arg == "--minutes")
            minutes = cli::parse_int(arg, next(), 1, 24 * 60);
        else if (arg == "--stride") stride = cli::parse_long(arg, next(), 1);
        else if (arg == "--sectors") sectors = cli::parse_int(arg, next(), 1);
        else if (arg == "--seed") {
            seed = cli::parse_u64(arg, next());
            seed_set = true;
        }
        else if (arg == "--shard") shard = cli::parse_int(arg, next(), 1);
        else if (arg == "--tile-cache")
            tile_cache = cli::parse_int(arg, next(), 1);
        else if (arg == "--margin")
            margin = cli::parse_double(arg, next(), 0.0);
        else if (arg == "--feeder-index") feeder_path = next();
        else if (arg == "--grid-plan") grid_plan_path = next();
        else if (arg == "--grid-summary") grid_summary_path = next();
        else if (arg == "--resume") resume = true;
        else if (arg == "--no-shared-sky") shared_sky = false;
        else if (arg == "--shared-horizon") shared_horizon = true;
        else if (arg == "--horizon-cache-mb")
            horizon_cache_mb = cli::parse_int(arg, next(), 1);
        else if (arg == "--metrics-out") metrics_out = next();
        else if (arg == "--trace-out") trace_out = next();
        else if (arg == "--gen-fixture") fixture_dir = next();
        else if (arg == "--roofs") fixture_roofs = cli::parse_int(arg, next(), 1);
        else if (arg == "--help" || arg == "-h") usage_error("help requested");
        else usage_error("unknown option " + arg);
    }
    } catch (const cli::UsageError& e) {
        usage_error(e.what());
    }

    try {
        if (!fixture_dir.empty()) {
            gis::CityFixtureOptions options;
            options.roofs = fixture_roofs;
            // Distinct defaults: weather seeds default to 42, the
            // fixture city to 7; an explicit --seed overrides either.
            if (seed_set) options.seed = seed;
            const gis::CityFixture fixture =
                gis::generate_city_fixture(fixture_dir, options);
            std::cout << "fixture: " << fixture.records << " roofs in "
                      << fixture.tiles_written << " tiles under "
                      << fixture.directory << "\n"
                      << "index:   " << fixture.csv_index_path;
            if (!fixture.json_index_path.empty())
                std::cout << " (+ " << fixture.json_index_path << ")";
            std::cout << "\n";
            if (!fixture.csv_feeder_path.empty())
                std::cout << "feeders: " << fixture.feeders << " in "
                          << fixture.csv_feeder_path << " (+ "
                          << fixture.json_feeder_path << ")\n";
            return 0;
        }

        if (tiles_dir.empty() || index_path.empty() || out_path.empty())
            usage_error("--tiles, --index and --out are required");
        if (!grid_plan_path.empty() && feeder_path.empty())
            usage_error("--grid-plan requires --feeder-index");
        if (minutes <= 0 || stride <= 0 || shard <= 0 || tile_cache <= 0 ||
            sectors <= 0)
            usage_error("non-positive numeric option");

        // Telemetry switches before any pipeline work: --metrics-out
        // turns the registry on, --trace-out additionally records span
        // timings.  Neither changes a single output byte (CI-gated).
        if (!metrics_out.empty() || !trace_out.empty())
            obs::set_enabled(true);
        if (!trace_out.empty()) obs::set_trace_enabled(true);

        const gis::TileIndex tiles = gis::TileIndex::scan(tiles_dir);
        const gis::RoofRegistry registry = gis::RoofRegistry::load(index_path);

        gis::CityRunOptions options;
        options.config.grid = TimeGrid(minutes, 1, 365);
        options.config.weather.seed = seed;
        options.config.suitability.step_stride = stride;
        options.config.horizon.azimuth_sectors = sectors;
        options.eval.step_stride = stride;
        options.topologies = parse_topologies(topologies);
        options.build.context_margin_m = margin;
        options.shard_size = shard;
        options.tile_cache_tiles = static_cast<std::size_t>(tile_cache);
        options.resume = resume;
        options.share_sky = shared_sky;
        options.share_horizon = shared_horizon;
        options.horizon_cache_mb =
            static_cast<std::size_t>(horizon_cache_mb);
        options.jsonl_path = out_path;
        options.summary_csv_path = summary_path;

        const gis::CityRunSummary summary =
            gis::run_city(tiles, registry, options);

        std::cout << "city: " << summary.total << " roofs ("
                  << summary.processed << " computed, " << summary.resumed
                  << " resumed, " << summary.failed << " failed) over "
                  << tiles.tile_count() << " tiles at "
                  << tiles.cell_size() << " m\n";
        std::cout << "tile cache: " << summary.tile_cache_hits << " hits / "
                  << summary.tile_cache_misses << " misses\n";
        if (shared_horizon)
            std::cout << "horizon cache: " << summary.horizon_cache_hits
                      << " hits / " << summary.horizon_cache_misses
                      << " misses, " << summary.horizon_cache_evictions
                      << " evictions, "
                      << summary.horizon_cache_bytes / (1024.0 * 1024.0)
                      << " MiB resident\n";
        const std::size_t top =
            std::min<std::size_t>(5, summary.ranking.size());
        for (std::size_t i = 0; i < top; ++i) {
            const gis::RoofResult& r =
                summary.results[summary.ranking[i]];
            std::cout << "  #" << (i + 1) << "  " << r.id << "  "
                      << r.best_kwh << " kWh/yr  (" << r.valid_cells
                      << " cells, tilt " << r.tilt_deg << " deg)\n";
        }
        std::cout << "results: " << out_path << "\n";
        if (!summary_path.empty())
            std::cout << "ranking: " << summary_path << "\n";

        if (!metrics_out.empty()) {
            std::ofstream ms(metrics_out, std::ios::binary);
            ms << obs::registry().snapshot_json() << "\n";
            if (!ms.good())
                throw IoError("cannot write metrics to '" + metrics_out +
                              "'");
            std::cout << "metrics: " << metrics_out << "\n";
        }
        if (!trace_out.empty()) {
            obs::write_chrome_trace(trace_out);
            std::cout << "trace: " << trace_out << " ("
                      << obs::dropped_spans() << " spans dropped)\n";
        }

        if (!grid_plan_path.empty()) {
            const grid::FeederModel model = grid::FeederModel::load(feeder_path);
            model.validate_roofs(registry);
            grid::GridPlaceOptions grid_options;
            grid_options.plan_jsonl_path = grid_plan_path;
            grid_options.summary_csv_path = grid_summary_path;
            const grid::GridPlanResult plan =
                grid::sequential_place(model, summary.results, grid_options);
            long capped = 0;
            for (const auto& skip : plan.skipped)
                if (skip.reason == "capped") ++capped;
            std::cout << "grid: placed " << plan.placements.size() << " of "
                      << plan.attached << " attached roofs over "
                      << plan.feeders.size() << " feeders (" << capped
                      << " capped, " << plan.errors << " errored)\n";
            std::cout << "plan: " << grid_plan_path << "\n";
            if (!grid_summary_path.empty())
                std::cout << "feeders: " << grid_summary_path << "\n";
        }
        return summary.failed == summary.total ? 1 : 0;
    } catch (const std::exception& e) {
        std::cerr << "pvfp_city: " << e.what() << "\n";
        return 1;
    }
}

/// \file industrial_campus.cpp
/// End-to-end reproduction of the paper's experimental campaign on one
/// binary: the three industrial roofs, both module counts, with per-roof
/// diagnostics — a compact version of the Table-I bench meant as a
/// starting point for users adapting the pipeline to their own sites.
/// Also demonstrates DSM export (the GIS interchange path): each roof's
/// DSM is written as an ESRI ASCII grid next to the binary.

#include <iostream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/util/table.hpp"

int main() {
    using namespace pvfp;

    std::cout << "Industrial campus study (paper Section V setup)\n"
                 "===============================================\n";

    core::ScenarioConfig config;
    // Coarser time axis than the paper benches: hourly steps keep this
    // example interactive (~15 s) while preserving the ranking behaviour.
    config.grid = TimeGrid(60, 1, 365);
    config.weather.seed = 42;

    TextTable table({"Roof", "Ng", "N", "compact MWh", "proposed MWh",
                     "gain", "baseline mode"});
    table.set_align(0, Align::Left);

    for (const auto& scenario : core::make_paper_roofs()) {
        const auto prepared = core::prepare_scenario(scenario, config);

        // GIS interchange: export the synthetic DSM for inspection in
        // QGIS/GDAL (read back with geo::read_asc_grid_file).
        const std::string path =
            "dsm_" + std::string(1, scenario.name.back()) + ".asc";
        geo::write_asc_grid_file(prepared.dsm, path);

        for (const int n : {16, 32}) {
            const pv::Topology topo{8, n / 8};
            const auto cmp = core::compare_placements(prepared, topo);
            const char* mode =
                cmp.traditional_mode == core::CompactMode::FullBlock
                    ? "block"
                    : (cmp.traditional_mode == core::CompactMode::StringRows
                           ? "rows"
                           : "per-module");
            table.add_row({prepared.name,
                           std::to_string(prepared.area.valid_count),
                           std::to_string(n),
                           TextTable::num(cmp.traditional_eval.net_mwh(), 3),
                           TextTable::num(cmp.proposed_eval.net_mwh(), 3),
                           TextTable::pct(cmp.improvement()) + "%", mode});
        }
        std::cout << "exported " << path << " ("
                  << prepared.dsm.width() << "x" << prepared.dsm.height()
                  << " cells)\n";
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "\nFor the full-resolution (15-minute) reproduction with "
                 "paper-side\ncomparisons, run bench/table1_production.\n";
    return 0;
}

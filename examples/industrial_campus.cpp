/// \file industrial_campus.cpp
/// End-to-end reproduction of the paper's experimental campaign on one
/// binary: the three industrial roofs, both module counts, with per-roof
/// diagnostics — a compact version of the Table-I bench meant as a
/// starting point for users adapting the pipeline to their own sites.
/// Also demonstrates DSM export (the GIS interchange path): each roof's
/// DSM is written as an ESRI ASCII grid next to the binary.

#include <iostream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/util/table.hpp"

int main() {
    using namespace pvfp;

    std::cout << "Industrial campus study (paper Section V setup)\n"
                 "===============================================\n";

    core::ScenarioConfig config;
    // Coarser time axis than the paper benches: hourly steps keep this
    // example interactive while preserving the ranking behaviour.
    config.grid = TimeGrid(60, 1, 365);
    config.weather.seed = 42;

    // The whole campaign through the batch runner: the three roofs are
    // prepared and compared concurrently on the thread pool (policy Auto
    // picks outer- vs inner-loop parallelism; see README "Performance &
    // threading").
    core::BatchOptions batch;
    batch.topologies = {pv::Topology{8, 2}, pv::Topology{8, 4}};
    const auto scenarios = core::make_paper_roofs();
    const auto reports = core::run_scenarios(scenarios, config, batch);

    TextTable table({"Roof", "Ng", "N", "compact MWh", "proposed MWh",
                     "gain", "baseline mode"});
    table.set_align(0, Align::Left);

    for (const auto& report : reports) {
        const auto& prepared = report.prepared;

        // GIS interchange: export the synthetic DSM for inspection in
        // QGIS/GDAL (read back with geo::read_asc_grid_file).
        const std::string path =
            "dsm_" + std::string(1, prepared.name.back()) + ".asc";
        geo::write_asc_grid_file(*prepared.dsm, path);

        for (std::size_t t = 0; t < batch.topologies.size(); ++t) {
            const auto& cmp = report.comparisons[t];
            const char* mode =
                cmp.traditional_mode == core::CompactMode::FullBlock
                    ? "block"
                    : (cmp.traditional_mode == core::CompactMode::StringRows
                           ? "rows"
                           : "per-module");
            table.add_row({prepared.name,
                           std::to_string(prepared.area.valid_count),
                           std::to_string(batch.topologies[t].total()),
                           TextTable::num(cmp.traditional_eval.net_mwh(), 3),
                           TextTable::num(cmp.proposed_eval.net_mwh(), 3),
                           TextTable::pct(cmp.improvement()) + "%", mode});
        }
        std::cout << "exported " << path << " ("
                  << prepared.dsm->width() << "x" << prepared.dsm->height()
                  << " cells)\n";
    }
    std::cout << '\n';
    table.print(std::cout);
    std::cout << "\nFor the full-resolution (15-minute) reproduction with "
                 "paper-side\ncomparisons, run bench/table1_production.\n";
    return 0;
}

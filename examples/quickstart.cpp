/// \file quickstart.cpp
/// Minimal end-to-end tour of the public API (README quickstart):
/// build a small roof scene, derive a year of solar data, place 4 modules
/// with the paper's greedy floorplanner, compare against the traditional
/// compact placement, and print both layouts — the Fig. 1 idea, live.

#include <iostream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/ascii_art.hpp"
#include "pvfp/util/table.hpp"

int main() {
    using namespace pvfp;

    // 1. A toy scene: a 8 x 4.8 m monopitch roof with a chimney and a
    //    taller wall to the east (shading gradient).
    core::RoofScenario scenario = core::make_toy();

    // 2. Pipeline configuration: one year of 15-minute synthetic Torino
    //    weather on a 20 cm grid (all paper defaults).
    core::ScenarioConfig config;
    config.weather.seed = 7;

    std::cout << "Preparing scenario (DSM, shadows, weather, suitability)...\n";
    const core::PreparedScenario prepared =
        core::prepare_scenario(scenario, config);

    std::cout << "Suitable area: " << prepared.area.width << " x "
              << prepared.area.height << " cells, Ng = "
              << prepared.area.valid_count << " valid\n";
    std::cout << "Unshaded plane insolation: "
              << TextTable::num(prepared.field.unshaded_insolation_kwh_m2(), 1)
              << " kWh/m^2/year\n\n";

    // 3. Place N = 4 modules as 2 series x 2 strings, both ways.
    const pv::Topology topology{2, 2};
    const core::PlacementComparison cmp =
        core::compare_placements(prepared, topology);

    // 4. Report.
    TextTable table({"placement", "energy [kWh/y]", "mismatch [kWh]",
                     "wiring [m]", "gain"});
    table.set_align(0, Align::Left);
    table.add_row({"traditional (compact)",
                   TextTable::num(cmp.traditional_eval.energy_kwh, 1),
                   TextTable::num(cmp.traditional_eval.mismatch_loss_kwh, 1),
                   TextTable::num(cmp.traditional_eval.extra_cable_m, 1),
                   "-"});
    table.add_row({"proposed (greedy sparse)",
                   TextTable::num(cmp.proposed_eval.energy_kwh, 1),
                   TextTable::num(cmp.proposed_eval.mismatch_loss_kwh, 1),
                   TextTable::num(cmp.proposed_eval.extra_cable_m, 1),
                   TextTable::pct(cmp.improvement()) + "%"});
    table.print(std::cout);

    // 5. Draw the two floorplans (letters = series strings).
    const auto boxes = [&](const core::Floorplan& plan) {
        std::vector<ModuleBox> out;
        for (int i = 0; i < plan.module_count(); ++i) {
            const auto& m = plan.modules[static_cast<std::size_t>(i)];
            out.push_back({m.x, m.y, plan.geometry.k1, plan.geometry.k2,
                           i / plan.topology.series});
        }
        return out;
    };
    std::cout << "\nTraditional (compact):\n"
              << render_floorplan(prepared.area.valid,
                                  boxes(cmp.traditional), 80);
    std::cout << "\nProposed (sparse, suitability-driven):\n"
              << render_floorplan(prepared.area.valid, boxes(cmp.proposed),
                                  80);

    std::cout << "\nSuitability map (p75 irradiance with T correction):\n";
    HeatmapOptions hm;
    hm.max_width = 80;
    hm.mask = &prepared.area.valid;
    std::cout << render_heatmap(prepared.suitability.suitability, hm);
    return 0;
}

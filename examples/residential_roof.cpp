/// \file residential_roof.cpp
/// The title use-case: optimal floorplanning for a *residential*
/// installation.  A gable-roof house with a chimney, a dormer and a
/// garden tree; 6 modules in 2 strings of 3 are placed on the south
/// plane, comparing the rule-of-thumb compact block with the paper's
/// suitability-driven sparse placement, and reporting the homeowner-level
/// quantities (yearly kWh, self-consumption-scale numbers, payback-style
/// deltas).

#include <iostream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/ascii_art.hpp"
#include "pvfp/util/table.hpp"

int main() {
    using namespace pvfp;

    std::cout << "Residential rooftop PV floorplanning (paper title "
                 "use-case)\n"
                 "==========================================================\n";

    core::ScenarioConfig config;
    config.weather.seed = 2026;

    const core::RoofScenario scenario = core::make_residential();
    std::cout << "Preparing scenario (DSM " << config.cell_size * 100
              << " cm, one year at " << config.grid.minutes_per_step()
              << "-minute steps)...\n";
    const auto prepared = core::prepare_scenario(scenario, config);

    std::cout << "South roof plane: " << prepared.area.width << " x "
              << prepared.area.height << " cells, Ng = "
              << prepared.area.valid_count << ", tilt "
              << TextTable::num(rad2deg(prepared.area.tilt_rad), 0)
              << " deg\n\n";

    const pv::Topology topology{3, 2};  // 6 modules, 2 strings of 3
    const auto cmp = core::compare_placements(prepared, topology);

    TextTable table({"placement", "yearly energy [kWh]", "mismatch [kWh]",
                     "extra cable [m]", "cable cost [$]"});
    table.set_align(0, Align::Left);
    table.add_row({"rule-of-thumb compact",
                   TextTable::num(cmp.traditional_eval.energy_kwh, 0),
                   TextTable::num(cmp.traditional_eval.mismatch_loss_kwh, 1),
                   TextTable::num(cmp.traditional_eval.extra_cable_m, 1),
                   TextTable::num(cmp.traditional_eval.wiring_cost_usd, 2)});
    table.add_row({"proposed (suitability)",
                   TextTable::num(cmp.proposed_eval.energy_kwh, 0),
                   TextTable::num(cmp.proposed_eval.mismatch_loss_kwh, 1),
                   TextTable::num(cmp.proposed_eval.extra_cable_m, 1),
                   TextTable::num(cmp.proposed_eval.wiring_cost_usd, 2)});
    table.print(std::cout);
    std::cout << "Gain: " << TextTable::pct(cmp.improvement())
              << " % yearly energy at iso-module-count (paper: 'roughly at "
                 "iso-cost').\n";

    const auto boxes = [&](const core::Floorplan& plan) {
        std::vector<ModuleBox> out;
        for (int i = 0; i < plan.module_count(); ++i) {
            const auto& m = plan.modules[static_cast<std::size_t>(i)];
            out.push_back({m.x, m.y, plan.geometry.k1, plan.geometry.k2,
                           i / plan.topology.series});
        }
        return out;
    };
    std::cout << "\nCompact placement (A/B = string):\n"
              << render_floorplan(prepared.area.valid,
                                  boxes(cmp.traditional), 100);
    std::cout << "\nProposed placement:\n"
              << render_floorplan(prepared.area.valid, boxes(cmp.proposed),
                                  100);

    std::cout << "\np75 irradiance map of the plane (chimney/dormer/tree "
                 "shade visible):\n";
    HeatmapOptions hm;
    hm.max_width = 100;
    hm.mask = &prepared.area.valid;
    std::cout << render_heatmap(prepared.suitability.g_percentile, hm);
    return 0;
}

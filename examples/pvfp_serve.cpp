/// \file pvfp_serve.cpp
/// `pvfp_serve` — the always-on ranking daemon over a GIS tile set:
///
///   pvfp_serve --tiles <dir> --index <index.csv|.json> [options]
///     --socket <path>            serve an AF_UNIX socket instead of
///                                stdin/stdout (one client at a time)
///     --log <path.jsonl>         append every request (replayable)
///     --feeder-index <file>      radial feeder index enabling the
///                                grid_rank op (feeder.csv|.json)
///     --replay <path.jsonl>      re-execute a request log serially and
///                                exit — byte-identical to the live
///                                session that wrote it
///     --memory-budget-mb <MB>    resident roof/sky/horizon byte budget
///                                (default: 512)
///     --shared-horizon           share horizon marching across roofs
///                                (macro-tile plane cache; uniform march
///                                distance, run_city --shared-horizon
///                                semantics)
///     --topologies <m1xn1,...>   topologies a rank compares
///                                (default: 8x2)
///     --minutes <step>           time step in minutes (default: 15)
///     --stride <k>               suitability+evaluation step stride
///                                (default: 4)
///     --sectors <n>              horizon azimuth sectors (default: 72)
///     --seed <u64>               weather seed (default: 42)
///     --margin <m>               shading context margin (default: 8)
///     --tile-cache <N>           resident decoded tiles (default: 16)
///     --max-batch <N>            max requests per parallel batch
///                                (default: 2 x threads)
///     --metrics-out <path.json>  write the obs metrics snapshot on exit
///                                (enables telemetry; the `metrics` op
///                                works regardless once PVFP_OBS=1)
///     --trace-out <path.json>    write Chrome trace-event JSON on exit
///                                (Perfetto); enables telemetry + spans
///
/// Requests are newline-delimited JSON, one response line per request
/// in arrival order (see src/pvfp/serve/protocol.hpp).  A typical
/// session:
///
///   printf '%s\n' '{"op":"status"}' '{"op":"rank","id":"R0007"}'
///       '{"op":"plan","id":"R0007","series":6,"strings":2}' '{"op":"quit"}'
///     | pvfp_serve --tiles city/ --index city/index.csv --log req.jsonl
///   (one shell line; wrapped here for width)
///   pvfp_serve --tiles city/ --index city/index.csv --replay req.jsonl

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "pvfp/obs/metrics.hpp"
#include "pvfp/obs/trace.hpp"
#include "pvfp/serve/server.hpp"
#include "pvfp/util/cli.hpp"
#include "pvfp/util/error.hpp"

namespace {

[[noreturn]] void usage_error(const std::string& message) {
    std::cerr << "pvfp_serve: " << message << "\n"
              << "usage: pvfp_serve --tiles DIR --index FILE\n"
              << "                  [--socket PATH] [--log REQ.jsonl]\n"
              << "                  [--replay REQ.jsonl]\n"
              << "                  [--feeder-index FILE]\n"
              << "                  [--memory-budget-mb MB]\n"
              << "                  [--shared-horizon]\n"
              << "                  [--topologies 8x2,8x4] [--minutes step]\n"
              << "                  [--stride k] [--sectors n] [--seed u64]\n"
              << "                  [--margin m] [--tile-cache N]\n"
              << "                  [--max-batch N]\n"
              << "                  [--metrics-out M.json] "
                 "[--trace-out T.json]\n";
    std::exit(2);
}

std::vector<pvfp::pv::Topology> parse_topologies(const std::string& spec) {
    std::vector<pvfp::pv::Topology> topologies;
    std::istringstream list(spec);
    std::string item;
    while (std::getline(list, item, ',')) {
        int series = 0, strings = 0;
        char x = 0;
        std::istringstream is(item);
        if (!(is >> series >> x >> strings) || x != 'x' || series <= 0 ||
            strings <= 0)
            usage_error("bad topology '" + item + "' (want e.g. 8x2)");
        topologies.push_back({series, strings});
    }
    if (topologies.empty()) usage_error("empty --topologies list");
    return topologies;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace pvfp;

    std::string tiles_dir, index_path, socket_path, log_path, replay_path;
    std::string feeder_path;
    std::string topologies = "8x2";
    long memory_budget_mb = 512;
    int minutes = 15;
    long stride = 4;
    int sectors = 72;
    std::uint64_t seed = 42;
    double margin = 8.0;
    int tile_cache = 16;
    int max_batch = 0;
    bool shared_horizon = false;
    std::string metrics_out, trace_out;

    try {
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> std::string {
            if (i + 1 >= argc) usage_error("missing value after " + arg);
            return argv[++i];
        };
        if (arg == "--tiles") tiles_dir = next();
        else if (arg == "--index") index_path = next();
        else if (arg == "--socket") socket_path = next();
        else if (arg == "--log") log_path = next();
        else if (arg == "--replay") replay_path = next();
        else if (arg == "--feeder-index") feeder_path = next();
        else if (arg == "--memory-budget-mb")
            memory_budget_mb = cli::parse_long(arg, next(), 1);
        else if (arg == "--topologies") topologies = next();
        else if (arg == "--minutes")
            minutes = cli::parse_int(arg, next(), 1, 24 * 60);
        else if (arg == "--stride") stride = cli::parse_long(arg, next(), 1);
        else if (arg == "--sectors") sectors = cli::parse_int(arg, next(), 1);
        else if (arg == "--seed") seed = cli::parse_u64(arg, next());
        else if (arg == "--margin")
            margin = cli::parse_double(arg, next(), 0.0);
        else if (arg == "--tile-cache")
            tile_cache = cli::parse_int(arg, next(), 1);
        else if (arg == "--max-batch")
            max_batch = cli::parse_int(arg, next(), 1);
        else if (arg == "--shared-horizon") shared_horizon = true;
        else if (arg == "--metrics-out") metrics_out = next();
        else if (arg == "--trace-out") trace_out = next();
        else if (arg == "--help" || arg == "-h") usage_error("help requested");
        else usage_error("unknown option " + arg);
    }
    } catch (const cli::UsageError& e) {
        usage_error(e.what());
    }

    if (tiles_dir.empty() || index_path.empty())
        usage_error("--tiles and --index are required");

    try {
        // Telemetry switches before any request is served; response
        // bytes are identical either way (the replay gate).
        if (!metrics_out.empty() || !trace_out.empty())
            obs::set_enabled(true);
        if (!trace_out.empty()) obs::set_trace_enabled(true);

        gis::TileIndex tiles = gis::TileIndex::scan(tiles_dir);
        gis::RoofRegistry registry = gis::RoofRegistry::load(index_path);

        serve::ServerOptions options;
        options.state.config.grid = TimeGrid(minutes, 1, 365);
        options.state.config.weather.seed = seed;
        options.state.config.suitability.step_stride = stride;
        options.state.config.horizon.azimuth_sectors = sectors;
        options.state.eval.step_stride = stride;
        options.state.topologies = parse_topologies(topologies);
        options.state.build.context_margin_m = margin;
        options.state.tile_cache_tiles =
            static_cast<std::size_t>(tile_cache);
        options.state.memory_budget_bytes =
            static_cast<std::size_t>(memory_budget_mb) << 20;
        options.state.share_horizon = shared_horizon;
        options.request_log_path = log_path;
        options.index_path = index_path;
        options.feeder_path = feeder_path;
        options.max_batch = max_batch;

        serve::Server server(std::move(tiles), std::move(registry),
                             std::move(options));

        if (!replay_path.empty()) {
            const long replayed = server.replay(replay_path, std::cout);
            std::cerr << "pvfp_serve: replayed " << replayed
                      << " request(s) from " << replay_path << "\n";
        } else if (!socket_path.empty()) {
            std::cerr << "pvfp_serve: listening on " << socket_path << "\n";
            server.serve_socket(socket_path);
        } else {
            server.serve(std::cin, std::cout);
        }

        // Cache statistics go to stderr only: response bytes must stay a
        // pure function of the request sequence for --replay.
        const serve::ResidentStats stats = server.state().stats();
        std::cerr << "pvfp_serve: " << server.requests_accepted()
                  << " request(s); resident " << stats.entries << " roof(s), "
                  << stats.sky_artifacts << " sky artifact(s), "
                  << (stats.resident_bytes >> 20) << " MB; " << stats.hits
                  << " hit(s) / " << stats.misses << " miss(es), "
                  << stats.evictions << " eviction(s), "
                  << stats.invalidations << " invalidation(s); tiles "
                  << stats.tile_cache_hits << " hit(s) / "
                  << stats.tile_cache_misses << " miss(es)\n";
        if (shared_horizon)
            std::cerr << "pvfp_serve: horizon cache "
                      << stats.horizon_cache_hits << " hit(s) / "
                      << stats.horizon_cache_misses << " miss(es), "
                      << stats.horizon_cache_evictions << " eviction(s), "
                      << (stats.horizon_cache_bytes >> 20)
                      << " MB resident\n";
        if (!metrics_out.empty()) {
            std::ofstream ms(metrics_out, std::ios::binary);
            ms << obs::registry().snapshot_json() << "\n";
            if (!ms.good())
                throw IoError("cannot write metrics to '" + metrics_out +
                              "'");
            std::cerr << "pvfp_serve: metrics -> " << metrics_out << "\n";
        }
        if (!trace_out.empty()) {
            obs::write_chrome_trace(trace_out);
            std::cerr << "pvfp_serve: trace -> " << trace_out << " ("
                      << obs::dropped_spans() << " spans dropped)\n";
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "pvfp_serve: " << e.what() << "\n";
        return 1;
    }
}

/// \file topology_explorer.cpp
/// Series/parallel topology exploration: for a fixed number of modules,
/// sweep every feasible m x n interconnection on the residential roof and
/// report how topology interacts with placement quality — long strings
/// are more exposed to the weak-module bottleneck (paper Sections II-B
/// and V-B), short strings cost panel voltage.

#include <iostream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/table.hpp"

int main() {
    using namespace pvfp;

    std::cout << "Series/parallel topology explorer (N = 12 modules)\n"
                 "==================================================\n";

    core::ScenarioConfig config;
    config.grid = TimeGrid(30, 1, 365);
    config.weather.seed = 7;
    // A larger residential-style roof so 12 modules fit comfortably.
    core::RoofScenario scenario = core::make_toy(14.0, 8.0);
    const auto prepared = core::prepare_scenario(scenario, config);
    std::cout << "Roof: " << prepared.area.width << " x "
              << prepared.area.height << " cells, Ng = "
              << prepared.area.valid_count << "\n\n";

    constexpr int kModules = 12;
    TextTable table({"topology (m x n)", "proposed MWh", "mismatch [kWh]",
                     "string V @STC", "panel I @STC", "cable [m]"});
    table.set_align(0, Align::Left);

    for (int m = 1; m <= kModules; ++m) {
        if (kModules % m != 0) continue;
        const int n = kModules / m;
        const pv::Topology topo{m, n};
        try {
            const auto plan = core::place_greedy(
                prepared.area, prepared.suitability.suitability,
                prepared.geometry, topo);
            const auto eval = core::evaluate_floorplan(
                plan, prepared.area, prepared.field, prepared.model);
            // STC electrical envelope of the topology.
            const auto stc = prepared.model.operating_point(1000.0, 25.0);
            table.add_row(
                {std::to_string(m) + " x " + std::to_string(n),
                 TextTable::num(eval.net_mwh(), 3),
                 TextTable::num(eval.mismatch_loss_kwh, 1),
                 TextTable::num(stc.voltage_v * m, 0) + " V",
                 TextTable::num(stc.current_a * n, 1) + " A",
                 TextTable::num(eval.extra_cable_m, 1)});
        } catch (const Infeasible& e) {
            table.add_row({std::to_string(m) + " x " + std::to_string(n),
                           "infeasible", "-", "-", "-", "-"});
        }
    }
    table.print(std::cout);

    std::cout << "\nReading: energy is nearly topology-independent when "
                 "strings are\nspatially homogeneous (the placement's job); "
                 "mismatch grows with m\nwhen a string is forced across "
                 "heterogeneous cells.  The electrical\ncolumns show the "
                 "inverter-window trade-off installers actually face.\n";

    // Bonus: module orientation.  The paper fixes landscape (8x4 cells);
    // the library supports portrait placement by swapping the footprint.
    std::cout << "\nOrientation comparison (4 x 2 topology):\n";
    TextTable orient({"orientation", "footprint [cells]", "proposed MWh"});
    orient.set_align(0, Align::Left);
    for (const bool portrait : {false, true}) {
        const auto geometry = core::PanelGeometry::from_module(
            prepared.config.module, prepared.config.cell_size, portrait);
        const pv::Topology topo{4, 2};
        try {
            const auto plan = core::place_greedy(
                prepared.area, prepared.suitability.suitability, geometry,
                topo);
            const auto eval = core::evaluate_floorplan(
                plan, prepared.area, prepared.field, prepared.model);
            orient.add_row({portrait ? "portrait" : "landscape",
                            std::to_string(geometry.k1) + "x" +
                                std::to_string(geometry.k2),
                            TextTable::num(eval.net_mwh(), 3)});
        } catch (const Infeasible&) {
            orient.add_row({portrait ? "portrait" : "landscape",
                            std::to_string(geometry.k1) + "x" +
                                std::to_string(geometry.k2),
                            "infeasible"});
        }
    }
    orient.print(std::cout);
    return 0;
}

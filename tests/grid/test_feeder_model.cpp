/// \file test_feeder_model.cpp
/// Property suite for the feeder-index loaders: every malformed input
/// in the catalogue below must surface as a *typed* pvfp error naming
/// the defect — never a crash, never a silently wrong model — and the
/// CSV and JSON loaders must produce identical models for equivalent
/// content.  Mirrors the PR-6 edge-pinning style of the JSONL scanner
/// tests: each known failure mode is pinned individually, then a
/// random byte-mutation fuzz sweep checks the "typed error or valid
/// model" contract holds off the beaten path too.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "pvfp/gis/roof_registry.hpp"
#include "pvfp/grid/feeder_model.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"

namespace {

using pvfp::Rng;
using pvfp::grid::FeederModel;

std::string write_temp(const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    return path;
}

/// A small well-formed index shared by the happy-path tests: two
/// feeders, a 3-bus chain plus a 1-bus feeder, three roofs.
const char* const kGoodCsv =
    "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus\n"
    "feeder,F0,,,,,,24.0,\n"
    "feeder,F1,,,,,,,\n"
    "bus,F0_root,F0,,0.02,400,0.0,,\n"
    "bus,b01,F0,F0_root,0.08,160,1.4,,\n"
    "bus,b02,F0,b01,0.05,120,2.1,,\n"
    "bus,F1_root,F1,,0.03,250,0.7,,\n"
    "roof,roof_000,,,,,,,b01\n"
    "roof,roof_001,,,,,,,b02\n"
    "roof,roof_002,,,,,,,F1_root\n";

const char* const kGoodJson =
    "{\"feeders\":[{\"id\":\"F0\",\"export_cap_kw\":24.0},{\"id\":\"F1\"}],"
    "\"buses\":["
    "{\"id\":\"F0_root\",\"feeder\":\"F0\",\"r_ohm\":0.02,"
    "\"ampacity_a\":400,\"load_kw\":0.0},"
    "{\"id\":\"b01\",\"feeder\":\"F0\",\"parent\":\"F0_root\","
    "\"r_ohm\":0.08,\"ampacity_a\":160,\"load_kw\":1.4},"
    "{\"id\":\"b02\",\"feeder\":\"F0\",\"parent\":\"b01\","
    "\"r_ohm\":0.05,\"ampacity_a\":120,\"load_kw\":2.1},"
    "{\"id\":\"F1_root\",\"feeder\":\"F1\",\"r_ohm\":0.03,"
    "\"ampacity_a\":250,\"load_kw\":0.7}],"
    "\"roofs\":[{\"id\":\"roof_000\",\"bus\":\"b01\"},"
    "{\"id\":\"roof_001\",\"bus\":\"b02\"},"
    "{\"id\":\"roof_002\",\"bus\":\"F1_root\"}]}";

void expect_equivalent(const FeederModel& a, const FeederModel& b) {
    ASSERT_EQ(a.feeders().size(), b.feeders().size());
    for (std::size_t f = 0; f < a.feeders().size(); ++f) {
        EXPECT_EQ(a.feeders()[f].id, b.feeders()[f].id);
        EXPECT_EQ(a.feeders()[f].export_cap_kw, b.feeders()[f].export_cap_kw);
        EXPECT_EQ(a.feeders()[f].root_bus, b.feeders()[f].root_bus);
    }
    ASSERT_EQ(a.buses().size(), b.buses().size());
    for (std::size_t i = 0; i < a.buses().size(); ++i) {
        EXPECT_EQ(a.buses()[i].id, b.buses()[i].id);
        EXPECT_EQ(a.buses()[i].feeder, b.buses()[i].feeder);
        EXPECT_EQ(a.buses()[i].parent, b.buses()[i].parent);
        EXPECT_EQ(a.buses()[i].r_ohm, b.buses()[i].r_ohm);
        EXPECT_EQ(a.buses()[i].ampacity_a, b.buses()[i].ampacity_a);
        EXPECT_EQ(a.buses()[i].load_kw, b.buses()[i].load_kw);
    }
    ASSERT_EQ(a.attachments().size(), b.attachments().size());
    for (std::size_t r = 0; r < a.attachments().size(); ++r) {
        EXPECT_EQ(a.attachments()[r].roof_id, b.attachments()[r].roof_id);
        EXPECT_EQ(a.attachments()[r].bus, b.attachments()[r].bus);
    }
    EXPECT_EQ(a.topo_order(), b.topo_order());
    EXPECT_EQ(a.base_flows(), b.base_flows());
    EXPECT_EQ(a.downstream_power_index(a.base_flows()),
              b.downstream_power_index(b.base_flows()));
}

TEST(FeederModel, CsvAndJsonLoadersAgree) {
    const FeederModel csv =
        FeederModel::load(write_temp("fm_good.csv", kGoodCsv));
    const FeederModel json =
        FeederModel::load(write_temp("fm_good.json", kGoodJson));
    expect_equivalent(csv, json);

    EXPECT_EQ(csv.feeders().size(), 2u);
    EXPECT_EQ(csv.buses().size(), 4u);
    EXPECT_EQ(csv.attachments().size(), 3u);
    EXPECT_EQ(csv.find_feeder("F1"), 1);
    EXPECT_EQ(csv.find_feeder("F9"), -1);
    EXPECT_EQ(csv.bus_of("roof_001"), 2);
    EXPECT_EQ(csv.bus_of("ghost"), -1);
    // Omitted cap = uncapped.
    EXPECT_EQ(csv.feeders()[1].export_cap_kw, 0.0);
}

TEST(FeederModel, TopoOrderAndFlows) {
    const FeederModel model =
        FeederModel::load(write_temp("fm_topo.csv", kGoodCsv));
    // Root-downward, file order within a feeder; feeders in file order.
    const std::vector<long> want_topo{0, 1, 2, 3};
    EXPECT_EQ(model.topo_order(), want_topo);
    ASSERT_EQ(model.feeder_topo(0).size(), 3u);
    ASSERT_EQ(model.feeder_topo(1).size(), 1u);

    const std::vector<double> flow = model.base_flows();
    EXPECT_DOUBLE_EQ(flow[2], 2.1);              // leaf
    EXPECT_DOUBLE_EQ(flow[1], 1.4 + 2.1);        // chain
    EXPECT_DOUBLE_EQ(flow[0], 0.0 + 1.4 + 2.1);  // root
    EXPECT_DOUBLE_EQ(flow[3], 0.7);

    const std::vector<double> dpi = model.downstream_power_index(flow);
    EXPECT_DOUBLE_EQ(dpi[0], 0.02 * 3.5);
    EXPECT_DOUBLE_EQ(dpi[1], dpi[0] + 0.08 * 3.5);
    EXPECT_DOUBLE_EQ(dpi[2], dpi[1] + 0.05 * 2.1);
    EXPECT_DOUBLE_EQ(dpi[3], 0.03 * 0.7);

    // An injection at the leaf drains the whole path to the root.
    std::vector<double> after = flow;
    model.apply_injection(after, 2, 1.0);
    EXPECT_DOUBLE_EQ(after[2], flow[2] - 1.0);
    EXPECT_DOUBLE_EQ(after[1], flow[1] - 1.0);
    EXPECT_DOUBLE_EQ(after[0], flow[0] - 1.0);
    EXPECT_DOUBLE_EQ(after[3], flow[3]);
    // Negative flow clamps out of the DPI (no negative displacement).
    model.apply_injection(after, 3, 10.0);
    EXPECT_DOUBLE_EQ(model.downstream_power_index(after)[3], 0.0);
}

TEST(FeederModel, CrlfFileParses) {
    std::string crlf(kGoodCsv);
    std::string with_cr;
    for (char c : crlf) {
        if (c == '\n') with_cr += '\r';
        with_cr += c;
    }
    const FeederModel model =
        FeederModel::load(write_temp("fm_crlf.csv", with_cr));
    expect_equivalent(model,
                      FeederModel::load(write_temp("fm_lf.csv", kGoodCsv)));
}

/// Each entry: a broken index plus the substring its error must carry.
struct BrokenCase {
    const char* name;
    const char* content;
    const char* expect;  ///< substring of the IoError message
};

class FeederModelBrokenCsv : public testing::TestWithParam<BrokenCase> {};

TEST_P(FeederModelBrokenCsv, TypedError) {
    const BrokenCase& broken = GetParam();
    const std::string path = write_temp(
        std::string("fm_") + broken.name + ".csv", broken.content);
    try {
        FeederModel::load(path);
        FAIL() << broken.name << ": expected IoError";
    } catch (const pvfp::IoError& e) {
        EXPECT_NE(std::string(e.what()).find(broken.expect),
                  std::string::npos)
            << broken.name << ": got '" << e.what() << "'";
    }
}

const char* const kHeader =
    "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus\n";

std::string rows(std::initializer_list<const char*> lines) {
    std::string out = kHeader;
    for (const char* line : lines) {
        out += line;
        out += '\n';
    }
    return out;
}

// Static storage: TestWithParam keeps pointers, not copies.
const std::string kTwoRoots = rows({"feeder,F0,,,,,,,",
                                    "bus,a,F0,,0.1,100,0,,",
                                    "bus,b,F0,,0.1,100,0,,"});
const std::string kNoRoot = rows({"feeder,F0,,,,,,,",
                                  "bus,a,F0,b,0.1,100,0,,",
                                  "bus,b,F0,a,0.1,100,0,,"});
const std::string kCycle = rows({"feeder,F0,,,,,,,",
                                 "bus,root,F0,,0.1,100,0,,",
                                 "bus,a,F0,b,0.1,100,0,,",
                                 "bus,b,F0,a,0.1,100,0,,"});
const std::string kSelfParent = rows({"feeder,F0,,,,,,,",
                                      "bus,root,F0,,0.1,100,0,,",
                                      "bus,a,F0,a,0.1,100,0,,"});
const std::string kDanglingParent = rows({"feeder,F0,,,,,,,",
                                          "bus,root,F0,,0.1,100,0,,",
                                          "bus,a,F0,ghost,0.1,100,0,,"});
const std::string kUnknownFeeder = rows({"feeder,F0,,,,,,,",
                                         "bus,root,F9,,0.1,100,0,,"});
const std::string kCrossFeederParent =
    rows({"feeder,F0,,,,,,,", "feeder,F1,,,,,,,",
          "bus,r0,F0,,0.1,100,0,,", "bus,r1,F1,,0.1,100,0,,",
          "bus,a,F1,r0,0.1,100,0,,"});
const std::string kDuplicateFeeder =
    rows({"feeder,F0,,,,,,,", "feeder,F0,,,,,,,"});
const std::string kDuplicateBus = rows({"feeder,F0,,,,,,,",
                                        "bus,a,F0,,0.1,100,0,,",
                                        "bus,a,F0,,0.1,100,0,,"});
const std::string kUnknownBusRoof = rows({"feeder,F0,,,,,,,",
                                          "bus,root,F0,,0.1,100,0,,",
                                          "roof,r,,,,,,,ghost"});
const std::string kDuplicateRoof = rows({"feeder,F0,,,,,,,",
                                         "bus,root,F0,,0.1,100,0,,",
                                         "roof,r,,,,,,,root",
                                         "roof,r,,,,,,,root"});
const std::string kNegativeR = rows({"feeder,F0,,,,,,,",
                                     "bus,root,F0,,-0.1,100,0,,"});
const std::string kNegativeAmpacity = rows({"feeder,F0,,,,,,,",
                                            "bus,root,F0,,0.1,-5,0,,"});
const std::string kNegativeLoad = rows({"feeder,F0,,,,,,,",
                                        "bus,root,F0,,0.1,100,-1,,"});
const std::string kNanCap = rows({"feeder,F0,,,,,,nan,"});
const std::string kEmptyId = rows({"feeder,,,,,,,,"});
const std::string kUnknownKind = rows({"transformer,T0,,,,,,,"});
const std::string kTornRow =
    std::string(kHeader) + "feeder,F0,,,,,,24.0,\nbus,a,F0";
const std::string kMissingColumn = "kind,id\nfeeder,F0\n";
const std::string kEmptyFile = "";

INSTANTIATE_TEST_SUITE_P(
    Catalogue, FeederModelBrokenCsv,
    testing::Values(
        BrokenCase{"two_roots", kTwoRoots.c_str(), "two roots"},
        BrokenCase{"no_root", kNoRoot.c_str(), "no root"},
        BrokenCase{"cycle", kCycle.c_str(), "unreachable"},
        BrokenCase{"self_parent", kSelfParent.c_str(), "own parent"},
        BrokenCase{"dangling_parent", kDanglingParent.c_str(),
                   "unknown parent"},
        BrokenCase{"unknown_feeder", kUnknownFeeder.c_str(),
                   "unknown feeder"},
        BrokenCase{"cross_feeder_parent", kCrossFeederParent.c_str(),
                   "different feeders"},
        BrokenCase{"duplicate_feeder", kDuplicateFeeder.c_str(),
                   "duplicate feeder"},
        BrokenCase{"duplicate_bus", kDuplicateBus.c_str(), "duplicate bus"},
        BrokenCase{"unknown_bus_roof", kUnknownBusRoof.c_str(),
                   "unknown bus"},
        BrokenCase{"duplicate_roof", kDuplicateRoof.c_str(),
                   "attached twice"},
        BrokenCase{"negative_r", kNegativeR.c_str(), "r_ohm"},
        BrokenCase{"negative_ampacity", kNegativeAmpacity.c_str(),
                   "ampacity_a"},
        BrokenCase{"negative_load", kNegativeLoad.c_str(), "load_kw"},
        BrokenCase{"nan_cap", kNanCap.c_str(), "export_cap_kw"},
        BrokenCase{"empty_id", kEmptyId.c_str(), "empty id"},
        BrokenCase{"unknown_kind", kUnknownKind.c_str(), "unknown kind"},
        BrokenCase{"missing_column", kMissingColumn.c_str(),
                   "missing column"}),
    [](const testing::TestParamInfo<BrokenCase>& info) {
        return info.param.name;
    });

TEST(FeederModel, TwoRootsNamesBothBuses) {
    // Regression: building this message once indexed buses_[-1] on the
    // happy path; the error content itself is also part of the contract
    // (serve replies carry it verbatim).
    try {
        FeederModel::load(write_temp("fm_tworoots.csv", kTwoRoots));
        FAIL() << "expected IoError";
    } catch (const pvfp::IoError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'a'"), std::string::npos) << what;
        EXPECT_NE(what.find("'b'"), std::string::npos) << what;
    }
}

TEST(FeederModel, TornAndEmptyFilesAreTypedErrors) {
    for (const std::string* content : {&kTornRow, &kEmptyFile}) {
        const std::string path = write_temp("fm_torn.csv", *content);
        EXPECT_THROW(FeederModel::load(path), pvfp::Error);
    }
    EXPECT_THROW(FeederModel::load(testing::TempDir() + "fm_missing.csv"),
                 pvfp::Error);
}

TEST(FeederModel, MalformedJsonIsTypedError) {
    for (const char* content :
         {"", "[]", "{\"feeders\":[{\"id\":\"F0\"}],\"buses\":[{}]}",
          "{\"buses\":[{\"id\":\"a\",\"feeder\":\"F0\"", "nonsense",
          "{\"feeders\":[{\"id\":\"F0\"}],"
          "\"buses\":[{\"id\":\"a\",\"feeder\":\"F0\","
          "\"r_ohm\":-1,\"ampacity_a\":10}]}"}) {
        const std::string path = write_temp("fm_bad.json", content);
        EXPECT_THROW(FeederModel::load(path), pvfp::Error) << content;
    }
}

TEST(FeederModel, ValidateRoofsAgainstRegistry) {
    // A minimal registry with exactly the three roofs the index names.
    const std::string index = write_temp(
        "fm_registry.csv",
        "id,min_x,min_y,max_x,max_y,lat,lon,polygon\n"
        "roof_000,0,0,8,6,45.0,7.7,\n"
        "roof_001,10,0,18,6,45.0,7.7,\n"
        "roof_002,20,0,28,6,45.0,7.7,\n");
    const pvfp::gis::RoofRegistry registry =
        pvfp::gis::RoofRegistry::load(index);
    const FeederModel model =
        FeederModel::load(write_temp("fm_vr.csv", kGoodCsv));
    EXPECT_NO_THROW(model.validate_roofs(registry));

    const std::string extra = std::string(kGoodCsv) +
                              "roof,roof_999,,,,,,,F1_root\n";
    const FeederModel widened =
        FeederModel::load(write_temp("fm_vr2.csv", extra));
    try {
        widened.validate_roofs(registry);
        FAIL() << "expected IoError";
    } catch (const pvfp::IoError& e) {
        EXPECT_NE(std::string(e.what()).find("roof_999"),
                  std::string::npos);
    }
}

/// Fuzz: random structural mutations of a valid index must either load
/// into a valid model or throw a pvfp::Error — nothing else escapes.
TEST(FeederModel, FuzzByteMutationsNeverCrash) {
    const std::string base = kGoodCsv;
    Rng rng(0xF33D5EEDULL);
    int loaded = 0, rejected = 0;
    for (int iteration = 0; iteration < 200; ++iteration) {
        std::string mutated = base;
        const int edits = 1 + static_cast<int>(rng.uniform_int(4));
        for (int e = 0; e < edits; ++e) {
            const std::size_t at = rng.uniform_int(mutated.size());
            switch (rng.uniform_int(4)) {
                case 0:  // flip a byte
                    mutated[at] = static_cast<char>(
                        32 + rng.uniform_int(95));
                    break;
                case 1:  // delete a byte
                    mutated.erase(at, 1);
                    break;
                case 2:  // duplicate a chunk
                    mutated.insert(at, mutated.substr(
                                           at, rng.uniform_int(20) + 1));
                    break;
                default:  // truncate (torn write)
                    mutated.resize(at);
                    break;
            }
            if (mutated.empty()) mutated = "x";
        }
        const std::string path = write_temp("fm_fuzz.csv", mutated);
        try {
            const FeederModel model = FeederModel::load(path);
            // Whatever loaded must be internally consistent.
            for (const pvfp::grid::FeederRecord& feeder : model.feeders())
                ASSERT_GE(feeder.root_bus, 0);
            ASSERT_EQ(model.topo_order().size(), model.buses().size());
            ++loaded;
        } catch (const pvfp::Error&) {
            ++rejected;
        }
    }
    // The sweep must exercise both outcomes to mean anything.
    EXPECT_GT(loaded, 0);
    EXPECT_GT(rejected, 0);
}

/// Same contract on the JSON loader.
TEST(FeederModel, FuzzJsonMutationsNeverCrash) {
    const std::string base = kGoodJson;
    Rng rng(0xBADF00DULL);
    int rejected = 0;
    for (int iteration = 0; iteration < 200; ++iteration) {
        std::string mutated = base;
        const std::size_t at = rng.uniform_int(mutated.size());
        switch (rng.uniform_int(3)) {
            case 0:
                mutated[at] = static_cast<char>(32 + rng.uniform_int(95));
                break;
            case 1:
                mutated.erase(at, rng.uniform_int(8) + 1);
                break;
            default:
                mutated.resize(at);
                break;
        }
        const std::string path = write_temp("fm_fuzz.json", mutated);
        try {
            (void)FeederModel::load(path);
        } catch (const pvfp::Error&) {
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0);
}

}  // namespace

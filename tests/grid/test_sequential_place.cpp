/// \file test_sequential_place.cpp
/// Differential hardening of the grid-aware sequential placer: the
/// incremental production placer must match its brute-force oracle
/// *bitwise* — identical placement order and identical serialized
/// bytes — on a sweep of seeded random feeder instances, and its own
/// bytes must not move with the thread count.  Plus the pinned edge
/// cases: status:error records never reach the scorer, caps are
/// enforced, ties break by results order, attached-but-missing yields
/// are a typed error.

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <string>
#include <vector>

#include "pvfp/gis/city_runner.hpp"
#include "pvfp/grid/sequential_place.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/rng.hpp"

namespace {

using pvfp::Rng;
using pvfp::gis::RoofResult;
using pvfp::grid::FeederModel;
using pvfp::grid::GridPlacement;
using pvfp::grid::GridPlaceOptions;
using pvfp::grid::GridPlanResult;
using pvfp::grid::placement_to_jsonl;
using pvfp::grid::sequential_place;
using pvfp::grid::sequential_place_reference;

std::string write_temp(const std::string& name, const std::string& content) {
    const std::string path = testing::TempDir() + name;
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
    return path;
}

/// One seeded random instance: a CSV feeder index (written to a temp
/// file) plus the matching yield records in registry order.
struct Instance {
    std::string index_path;
    std::vector<RoofResult> results;
};

Instance random_instance(std::uint64_t seed) {
    Rng rng(seed);
    const int n_feeders = 1 + static_cast<int>(rng.uniform_int(4));
    std::string csv =
        "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus\n";

    // Feeders: a mix of binding caps, loose caps, and uncapped.
    std::vector<std::string> feeder_ids;
    for (int f = 0; f < n_feeders; ++f) {
        feeder_ids.push_back("F" + std::to_string(f));
        std::string cap;
        const std::uint64_t regime = rng.uniform_int(3);
        if (regime == 0) cap = "";  // uncapped (omitted)
        else if (regime == 1)
            cap = std::to_string(rng.uniform(0.05, 0.4));   // binds often
        else
            cap = std::to_string(rng.uniform(5.0, 50.0));   // loose
        csv += "feeder," + feeder_ids.back() + ",,,,,," + cap + ",\n";
    }

    // Buses: per feeder a root plus a random tree (parent = any earlier
    // bus of the same feeder), so chains, stars, and bushy trees all
    // appear in the sweep.
    std::vector<std::string> bus_ids;
    std::vector<int> bus_feeder;
    for (int f = 0; f < n_feeders; ++f) {
        const int n_buses = 1 + static_cast<int>(rng.uniform_int(7));
        std::vector<std::string> mine;
        for (int b = 0; b < n_buses; ++b) {
            const std::string id =
                feeder_ids[static_cast<std::size_t>(f)] + "_b" +
                std::to_string(b);
            const std::string parent =
                b == 0 ? ""
                       : mine[rng.uniform_int(mine.size())];
            csv += "bus," + id + "," +
                   feeder_ids[static_cast<std::size_t>(f)] + "," + parent +
                   "," + std::to_string(rng.uniform(0.005, 0.12)) + "," +
                   std::to_string(rng.uniform(80.0, 400.0)) + "," +
                   std::to_string(rng.uniform(0.0, 3.0)) + ",,\n";
            mine.push_back(id);
            bus_ids.push_back(id);
            bus_feeder.push_back(f);
        }
    }

    // Roofs: each attaches to a random bus; yields overlap across
    // feeders so the argmax constantly flips between them.  A slice of
    // records are errors, and a few extra results are unattached.
    Instance instance;
    const int n_roofs = 4 + static_cast<int>(rng.uniform_int(28));
    for (int r = 0; r < n_roofs; ++r) {
        RoofResult result;
        result.id = "roof_" + std::to_string(r);
        if (rng.bernoulli(0.85)) {
            const std::size_t bus = rng.uniform_int(bus_ids.size());
            csv += "roof," + result.id + ",,,,,,," + bus_ids[bus] + "\n";
        }
        if (rng.bernoulli(0.12)) {
            result.ok = false;
            result.error = "mosaic: footprint off the tile set";
        } else {
            result.ok = true;
            result.best_kwh = rng.uniform(40.0, 2600.0);
            // Exact ties exercise the results-order tie-break.
            if (rng.bernoulli(0.2)) result.best_kwh = 1000.0;
        }
        instance.results.push_back(result);
    }
    instance.index_path = write_temp(
        "sp_" + std::to_string(seed) + ".csv", csv);
    return instance;
}

std::string serialize(const GridPlanResult& plan) {
    std::string out;
    for (const GridPlacement& placement : plan.placements)
        out += placement_to_jsonl(placement) + "\n";
    for (const pvfp::grid::GridSkipped& skip : plan.skipped)
        out += skip.roof_id + ":" + skip.reason + "\n";
    for (const pvfp::grid::GridFeederTotal& total : plan.feeders) {
        char buf[256];
        std::snprintf(buf, sizeof buf, "%s placed=%ld capped=%ld "
                      "kw=%.17g cap=%.17g kwh=%.17g\n",
                      total.feeder_id.c_str(), total.placed, total.capped,
                      total.placed_kw, total.export_cap_kw,
                      total.yield_kwh);
        out += buf;
    }
    out += "attached=" + std::to_string(plan.attached) +
           " errors=" + std::to_string(plan.errors) + "\n";
    return out;
}

/// Tentpole satellite: 40+ seeded instances, oracle vs incremental,
/// bitwise.
TEST(SequentialPlaceDifferential, MatchesBruteForceOracleBitwise) {
    int nonempty = 0, capped_somewhere = 0, errored_somewhere = 0;
    for (std::uint64_t seed = 1; seed <= 44; ++seed) {
        const Instance instance = random_instance(seed * 7919);
        const FeederModel model = FeederModel::load(instance.index_path);
        const GridPlanResult fast =
            sequential_place(model, instance.results);
        const GridPlanResult oracle =
            sequential_place_reference(model, instance.results);
        EXPECT_EQ(serialize(fast), serialize(oracle))
            << "seed " << seed;
        if (!fast.placements.empty()) ++nonempty;
        if (fast.errors > 0) ++errored_somewhere;
        for (const pvfp::grid::GridSkipped& skip : fast.skipped)
            if (skip.reason == "capped") {
                ++capped_somewhere;
                break;
            }
    }
    // The sweep must cover placements, cap exhaustion, and error
    // records, or the equivalence claim is hollow.
    EXPECT_GT(nonempty, 30);
    EXPECT_GT(capped_somewhere, 5);
    EXPECT_GT(errored_somewhere, 5);
}

TEST(SequentialPlaceDifferential, ThreadCountNeverMovesBytes) {
    for (std::uint64_t seed : {3ULL, 11ULL, 29ULL}) {
        const Instance instance = random_instance(seed * 104729);
        const FeederModel model = FeederModel::load(instance.index_path);
        pvfp::set_thread_count(1);
        const std::string serial =
            serialize(sequential_place(model, instance.results));
        pvfp::set_thread_count(8);
        const std::string parallel =
            serialize(sequential_place(model, instance.results));
        pvfp::set_thread_count(0);
        EXPECT_EQ(serial, parallel) << "seed " << seed;
    }
}

const char* const kChainCsv =
    "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus\n"
    "feeder,F0,,,,,,0.5,\n"
    "bus,root,F0,,0.02,400,1.0,,\n"
    "bus,mid,F0,root,0.05,160,2.0,,\n"
    "bus,leaf,F0,mid,0.08,120,1.5,,\n"
    "roof,r0,,,,,,,leaf\n"
    "roof,r1,,,,,,,mid\n"
    "roof,r2,,,,,,,leaf\n";

RoofResult ok_result(const std::string& id, double kwh) {
    RoofResult result;
    result.id = id;
    result.ok = true;
    result.best_kwh = kwh;
    return result;
}

RoofResult error_result(const std::string& id) {
    RoofResult result;
    result.id = id;
    result.ok = false;
    result.error = "prepare failed";
    return result;
}

/// Regression: a status:error record must be skipped up front, not
/// scored — previously a NaN (0/0-style missing yield) could have
/// poisoned the argmax and the emitted bytes.
TEST(SequentialPlace, ErrorRecordsAreSkippedNotScored) {
    const FeederModel model =
        FeederModel::load(write_temp("sp_err.csv", kChainCsv));
    const std::vector<RoofResult> results{
        error_result("r0"), ok_result("r1", 800.0), ok_result("r2", 900.0)};
    const GridPlanResult plan = sequential_place(model, results);

    EXPECT_EQ(plan.errors, 1);
    ASSERT_EQ(plan.placements.size(), 2u);
    for (const GridPlacement& placement : plan.placements) {
        EXPECT_NE(placement.roof_id, "r0");
        EXPECT_TRUE(std::isfinite(placement.score));
        EXPECT_TRUE(std::isfinite(placement.dpi));
    }
    ASSERT_FALSE(plan.skipped.empty());
    EXPECT_EQ(plan.skipped[0].roof_id, "r0");
    EXPECT_EQ(plan.skipped[0].reason, "error");
    // And the oracle agrees bitwise even here.
    EXPECT_EQ(serialize(plan),
              serialize(sequential_place_reference(model, results)));
}

TEST(SequentialPlace, CapIsEnforcedPerFeeder) {
    const FeederModel model =
        FeederModel::load(write_temp("sp_cap.csv", kChainCsv));
    // avg_kw = kwh/8760: 2628 -> 0.3, 1752 -> 0.2, 1314 -> 0.15.
    const std::vector<RoofResult> results{ok_result("r0", 2628.0),
                                          ok_result("r1", 1752.0),
                                          ok_result("r2", 1314.0)};
    const GridPlanResult plan = sequential_place(model, results);

    // Cap 0.5: the 0.3 pick fits, then exactly one of the others.
    ASSERT_EQ(plan.feeders.size(), 1u);
    EXPECT_LE(plan.feeders[0].placed_kw, 0.5 + 1e-12);
    EXPECT_EQ(plan.feeders[0].placed, 2);
    EXPECT_EQ(plan.feeders[0].capped, 1);
    ASSERT_EQ(plan.skipped.size(), 1u);
    EXPECT_EQ(plan.skipped[0].reason, "capped");
    // feeder_used_kw in the emitted records is the running total.
    EXPECT_NEAR(plan.placements.back().feeder_used_kw,
                plan.feeders[0].placed_kw, 1e-12);
}

TEST(SequentialPlace, TiesBreakByResultsOrder) {
    const FeederModel model =
        FeederModel::load(write_temp("sp_tie.csv", kChainCsv));
    // r0 and r2 attach to the same bus with identical yields: the
    // first in results order must win every time.
    const std::vector<RoofResult> results{ok_result("r0", 1000.0),
                                          ok_result("r1", 1.0),
                                          ok_result("r2", 1000.0)};
    const GridPlanResult plan = sequential_place(model, results);
    ASSERT_GE(plan.placements.size(), 2u);
    EXPECT_EQ(plan.placements[0].roof_id, "r0");
    EXPECT_EQ(plan.placements[1].roof_id, "r2");
}

TEST(SequentialPlace, DpiPrefersDeepBusesAndUpdatesAfterPicks) {
    const char* const csv =
        "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus\n"
        "feeder,F0,,,,,,,\n"
        "bus,root,F0,,0.02,400,5.0,,\n"
        "bus,leaf,F0,root,0.10,120,5.0,,\n"
        "roof,shallow,,,,,,,root\n"
        "roof,deep,,,,,,,leaf\n";
    const FeederModel model =
        FeederModel::load(write_temp("sp_dpi.csv", csv));
    // Identical yields: the deeper bus has strictly larger DPI, so the
    // leaf roof must be picked first despite equal kWh.
    const std::vector<RoofResult> results{ok_result("shallow", 1200.0),
                                          ok_result("deep", 1200.0)};
    const GridPlanResult plan = sequential_place(model, results);
    ASSERT_EQ(plan.placements.size(), 2u);
    EXPECT_EQ(plan.placements[0].roof_id, "deep");
    EXPECT_GT(plan.placements[0].dpi, plan.placements[1].dpi);
    // The second pick is scored under post-commit flows, so its DPI is
    // smaller than the same bus's pre-commit value.
    const std::vector<double> dpi0 =
        model.downstream_power_index(model.base_flows());
    EXPECT_LT(plan.placements[1].dpi, dpi0[0]);
}

TEST(SequentialPlace, FeederFilterRestrictsThePlan) {
    const char* const csv =
        "kind,id,feeder,parent,r_ohm,ampacity_a,load_kw,export_cap_kw,bus\n"
        "feeder,F0,,,,,,,\n"
        "feeder,F1,,,,,,,\n"
        "bus,a,F0,,0.02,400,1.0,,\n"
        "bus,b,F1,,0.02,400,1.0,,\n"
        "roof,r0,,,,,,,a\n"
        "roof,r1,,,,,,,b\n";
    const FeederModel model =
        FeederModel::load(write_temp("sp_filter.csv", csv));
    const std::vector<RoofResult> results{ok_result("r0", 500.0),
                                          ok_result("r1", 700.0)};
    GridPlaceOptions options;
    options.feeder_filter = "F1";
    const GridPlanResult plan = sequential_place(model, results, options);
    EXPECT_EQ(plan.attached, 1);
    ASSERT_EQ(plan.placements.size(), 1u);
    EXPECT_EQ(plan.placements[0].roof_id, "r1");
    EXPECT_EQ(serialize(plan),
              serialize(sequential_place_reference(model, results,
                                                   options)));

    GridPlaceOptions unknown;
    unknown.feeder_filter = "F9";
    EXPECT_THROW(sequential_place(model, results, unknown), pvfp::IoError);
}

TEST(SequentialPlace, AttachedRoofWithoutYieldIsTypedError) {
    const FeederModel model =
        FeederModel::load(write_temp("sp_gap.csv", kChainCsv));
    const std::vector<RoofResult> results{ok_result("r0", 500.0),
                                          ok_result("r1", 700.0)};
    // r2 is attached but absent from results.
    try {
        sequential_place(model, results);
        FAIL() << "expected IoError";
    } catch (const pvfp::IoError& e) {
        EXPECT_NE(std::string(e.what()).find("r2"), std::string::npos);
    }
}

TEST(SequentialPlace, BadOptionsAreTypedErrors) {
    const FeederModel model =
        FeederModel::load(write_temp("sp_opt.csv", kChainCsv));
    const std::vector<RoofResult> results{ok_result("r0", 500.0),
                                          ok_result("r1", 700.0),
                                          ok_result("r2", 100.0)};
    GridPlaceOptions options;
    options.hours_per_year = 0.0;
    EXPECT_THROW(sequential_place(model, results, options),
                 pvfp::InvalidArgument);
}

TEST(SequentialPlace, WritesPlanAndSummaryFiles) {
    const FeederModel model =
        FeederModel::load(write_temp("sp_files.csv", kChainCsv));
    const std::vector<RoofResult> results{ok_result("r0", 2628.0),
                                          ok_result("r1", 1752.0),
                                          error_result("r2")};
    GridPlaceOptions options;
    options.plan_jsonl_path = testing::TempDir() + "sp_plan.jsonl";
    options.summary_csv_path = testing::TempDir() + "sp_summary.csv";
    const GridPlanResult plan = sequential_place(model, results, options);

    std::ifstream plan_in(options.plan_jsonl_path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(plan_in, line)) {
        EXPECT_EQ(line, placement_to_jsonl(plan.placements[lines]));
        ++lines;
    }
    EXPECT_EQ(lines, plan.placements.size());

    std::ifstream summary_in(options.summary_csv_path);
    ASSERT_TRUE(std::getline(summary_in, line));
    EXPECT_EQ(line,
              "feeder,placed,capped,placed_kw,export_cap_kw,"
              "utilization_pct,yield_kwh");
    ASSERT_TRUE(std::getline(summary_in, line));
    EXPECT_EQ(line.substr(0, 3), "F0,");
}

}  // namespace

/// \file test_tile_index.cpp
/// Tile discovery + windowed mosaic reads: lattice checks, boundary
/// crossings, NODATA handling, overlap determinism, and the LRU cache.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/gis/tile_index.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::gis {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root.
std::string temp_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("pvfp_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/// A 2x2 tile set (each tile 4x3 cells at 0.5 m) holding v = 100*tx +
/// 10*ty + local row-major cell index, rooted at (10, 20).
struct QuadTiles {
    std::string dir;
    static constexpr double cs = 0.5;
    static constexpr int w = 4;
    static constexpr int h = 3;

    explicit QuadTiles(const std::string& name) : dir(temp_dir(name)) {
        for (int ty = 0; ty < 2; ++ty) {
            for (int tx = 0; tx < 2; ++tx) {
                // ty = 0 is the NORTH row of tiles.
                geo::Raster tile(w, h, cs, 0.0, 10.0 + tx * w * cs,
                                 20.0 + (2 - ty) * h * cs);
                for (int y = 0; y < h; ++y)
                    for (int x = 0; x < w; ++x)
                        tile(x, y) = 100.0 * tx + 10.0 * ty + y * w + x;
                geo::write_asc_grid_file(
                    tile, dir + "/t" + std::to_string(ty) +
                              std::to_string(tx) + ".asc");
            }
        }
    }
};

TEST(TileIndex, ScansHeadersAndExtent) {
    const QuadTiles tiles("scan");
    const TileIndex index = TileIndex::scan(tiles.dir);
    EXPECT_EQ(index.tile_count(), 4);
    EXPECT_DOUBLE_EQ(index.cell_size(), 0.5);
    EXPECT_DOUBLE_EQ(index.extent().x0, 10.0);
    EXPECT_DOUBLE_EQ(index.extent().y0, 20.0);
    EXPECT_DOUBLE_EQ(index.extent().x1, 14.0);
    EXPECT_DOUBLE_EQ(index.extent().y1, 23.0);
    // Sorted by filename.
    EXPECT_NE(index.tiles()[0].path.find("t00"), std::string::npos);
    EXPECT_NE(index.tiles()[3].path.find("t11"), std::string::npos);
}

TEST(TileIndex, WindowCrossingAllFourTiles) {
    const QuadTiles tiles("cross");
    const TileIndex index = TileIndex::scan(tiles.dir);
    // Center window straddling both tile rows and columns.
    const geo::Raster window =
        index.read_window({11.0, 20.5, 13.0, 22.0});
    EXPECT_EQ(window.width(), 4);
    EXPECT_EQ(window.height(), 3);
    EXPECT_DOUBLE_EQ(window.origin_x(), 11.0);
    EXPECT_DOUBLE_EQ(window.origin_y(), 22.0);
    // Every cell must equal a direct full-mosaic read of the same spot.
    const geo::Raster full = index.read_window(index.extent());
    for (int y = 0; y < window.height(); ++y) {
        for (int x = 0; x < window.width(); ++x) {
            const int fx = full.col_of(window.world_x(x));
            const int fy = full.row_of(window.world_y(y));
            EXPECT_DOUBLE_EQ(window(x, y), full(fx, fy));
        }
    }
    // No NODATA inside the covered area.
    for (int y = 0; y < window.height(); ++y)
        for (int x = 0; x < window.width(); ++x)
            EXPECT_NE(window(x, y), window.nodata());
}

TEST(TileIndex, FullMosaicReconstructsTiles) {
    const QuadTiles tiles("full");
    const TileIndex index = TileIndex::scan(tiles.dir);
    const geo::Raster full = index.read_window(index.extent());
    EXPECT_EQ(full.width(), 8);
    EXPECT_EQ(full.height(), 6);
    // NW corner cell comes from tile (tx=0, ty=0), local (0,0) -> 0.
    EXPECT_DOUBLE_EQ(full(0, 0), 0.0);
    // NE corner cell: tile tx=1 ty=0, local (3,0) -> 103.
    EXPECT_DOUBLE_EQ(full(7, 0), 103.0);
    // SW corner cell: tile tx=0 ty=1, local (0,2) -> 10 + 8 = 18.
    EXPECT_DOUBLE_EQ(full(0, 5), 18.0);
}

TEST(TileIndex, UncoveredCellsAreNoData) {
    const QuadTiles tiles("uncovered");
    const TileIndex index = TileIndex::scan(tiles.dir);
    // Window poking 1 m west and 0.5 m north past the tile set.
    const geo::Raster window =
        index.read_window({9.0, 22.0, 11.0, 23.5});
    EXPECT_EQ(window.width(), 4);
    EXPECT_EQ(window.height(), 3);
    for (int y = 0; y < window.height(); ++y)
        for (int x = 0; x < window.width(); ++x) {
            const bool covered = window.world_x(x) > 10.0 &&
                                 window.world_y(y) < 23.0;
            EXPECT_EQ(window(x, y) == window.nodata(), !covered)
                << "cell " << x << "," << y;
        }
}

TEST(TileIndex, SourceNoDataPropagates) {
    const std::string dir = temp_dir("srcnodata");
    geo::Raster tile(3, 3, 1.0, 7.0, 0.0, 3.0);
    tile.set_nodata(-1.0);
    tile(1, 1) = -1.0;
    geo::write_asc_grid_file(tile, dir + "/a.asc");
    const TileIndex index = TileIndex::scan(dir);
    const geo::Raster window = index.read_window(index.extent());
    EXPECT_DOUBLE_EQ(window(0, 0), 7.0);
    // The source gap maps to the mosaic's own NODATA convention.
    EXPECT_DOUBLE_EQ(window(1, 1), window.nodata());
}

TEST(TileIndex, OverlapFirstTileInSortedOrderWins) {
    const std::string dir = temp_dir("overlap");
    geo::Raster a(2, 2, 1.0, 1.0, 0.0, 2.0);
    geo::Raster b(2, 2, 1.0, 2.0, 1.0, 2.0);  // shifted east by 1 cell
    geo::write_asc_grid_file(a, dir + "/a.asc");
    geo::write_asc_grid_file(b, dir + "/b.asc");
    const TileIndex index = TileIndex::scan(dir);
    const geo::Raster full = index.read_window(index.extent());
    EXPECT_EQ(full.width(), 3);
    // Overlap column (world x in [1,2)) belongs to 'a' (sorted first).
    EXPECT_DOUBLE_EQ(full(1, 0), 1.0);
    EXPECT_DOUBLE_EQ(full(2, 0), 2.0);
}

TEST(TileIndex, RejectsBadTileSets) {
    // Cell-size mismatch.
    {
        const std::string dir = temp_dir("badcell");
        geo::write_asc_grid_file(geo::Raster(2, 2, 1.0, 0.0, 0.0, 2.0),
                                 dir + "/a.asc");
        geo::write_asc_grid_file(geo::Raster(2, 2, 0.5, 0.0, 2.0, 1.0),
                                 dir + "/b.asc");
        EXPECT_THROW(TileIndex::scan(dir), IoError);
    }
    // Off-lattice tile.
    {
        const std::string dir = temp_dir("badlattice");
        geo::write_asc_grid_file(geo::Raster(2, 2, 1.0, 0.0, 0.0, 2.0),
                                 dir + "/a.asc");
        geo::write_asc_grid_file(geo::Raster(2, 2, 1.0, 0.0, 2.25, 2.0),
                                 dir + "/b.asc");
        EXPECT_THROW(TileIndex::scan(dir), IoError);
    }
    // Empty directory / missing directory.
    EXPECT_THROW(TileIndex::scan(temp_dir("empty")), IoError);
    EXPECT_THROW(TileIndex::scan("/nonexistent/pvfp"), IoError);
}

TEST(TileIndex, CacheBoundsResidencyAndCountsHits) {
    const QuadTiles tiles("cache");
    const TileIndex index = TileIndex::scan(tiles.dir);
    TileCache cache(2);
    // Full mosaic touches all 4 tiles: 4 misses into a 2-slot cache.
    (void)index.read_window(index.extent(), &cache);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.hits(), 0u);
    // A window inside the most recently used tile hits.
    (void)index.read_window({12.5, 20.2, 13.5, 21.0}, &cache);
    EXPECT_GE(cache.hits(), 1u);
    // Cached reads equal uncached reads.
    const geo::Raster cached =
        index.read_window({10.5, 20.5, 13.5, 22.5}, &cache);
    const geo::Raster direct = index.read_window({10.5, 20.5, 13.5, 22.5});
    EXPECT_EQ(cached, direct);
}

TEST(TileIndex, WindowValidation) {
    const QuadTiles tiles("validate");
    const TileIndex index = TileIndex::scan(tiles.dir);
    EXPECT_THROW(index.read_window({5.0, 5.0, 5.0, 6.0}), InvalidArgument);
    EXPECT_THROW(index.read_window({5.0, 5.0, 4.0, 6.0}), InvalidArgument);
}

// ---- Per-key in-flight decode (the PR-6 bugfix) -----------------------
//
// These suites inject an instrumented loader: each decode parks on a
// per-path latch the test releases, so the test can prove which decodes
// run concurrently and which threads joined an in-flight build.

/// Loader whose decodes block until released, counting calls per path.
struct GatedLoader {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::string, int> calls;       ///< decodes started, per path
    std::set<std::string> released;         ///< paths allowed to finish
    bool fail = false;                      ///< throw instead of decode

    TileCache::Loader loader() {
        return [this](const std::string& path) {
            std::unique_lock<std::mutex> lock(mutex);
            ++calls[path];
            cv.notify_all();
            const bool ok = cv.wait_for(
                lock, std::chrono::seconds(20),
                [&] { return released.count(path) != 0; });
            if (!ok) throw IoError("GatedLoader: timed out on " + path);
            if (fail) throw IoError("GatedLoader: injected failure");
            return geo::Raster(2, 2, 1.0, 0.0, 0.0, 2.0);
        };
    }

    /// Block (bounded) until \p n decodes of \p path have *started*.
    bool await_started(const std::string& path, int n) {
        std::unique_lock<std::mutex> lock(mutex);
        return cv.wait_for(lock, std::chrono::seconds(20),
                           [&] { return calls[path] >= n; });
    }

    void release(const std::string& path) {
        std::lock_guard<std::mutex> lock(mutex);
        released.insert(path);
        cv.notify_all();
    }
};

TEST(TileCache, ConcurrentMissesOnDifferentTilesOverlap) {
    // The regression this PR fixes: with the decode serialized under the
    // cache-wide mutex (or waiters parked on it), two misses on
    // *different* tiles could never be in flight together.  Here both
    // decodes must start while neither has been allowed to finish —
    // under the old locking this deadlocks the second start, and the
    // bounded waits turn that into a failure instead of a hang.
    GatedLoader gate;
    TileCache cache(4, gate.loader());
    std::thread a([&] { (void)cache.load("tile_a"); });
    std::thread b([&] { (void)cache.load("tile_b"); });
    EXPECT_TRUE(gate.await_started("tile_a", 1));
    EXPECT_TRUE(gate.await_started("tile_b", 1));  // overlap proven
    gate.release("tile_a");
    gate.release("tile_b");
    a.join();
    b.join();
    EXPECT_EQ(cache.misses(), 2u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(TileCache, ConcurrentMissesOnSameTileDecodeOnce) {
    GatedLoader gate;
    TileCache cache(4, gate.loader());
    std::vector<std::thread> threads;
    std::vector<std::shared_ptr<const geo::Raster>> got(4);
    for (int t = 0; t < 4; ++t)
        threads.emplace_back([&, t] { got[t] = cache.load("tile_x"); });
    ASSERT_TRUE(gate.await_started("tile_x", 1));
    gate.release("tile_x");
    for (std::thread& t : threads) t.join();
    {
        std::lock_guard<std::mutex> lock(gate.mutex);
        EXPECT_EQ(gate.calls["tile_x"], 1) << "duplicate decode";
    }
    EXPECT_EQ(cache.misses(), 1u);  // one decode initiated...
    EXPECT_EQ(cache.hits(), 3u);    // ...three joins served without one
    for (int t = 1; t < 4; ++t) EXPECT_EQ(got[t], got[0]);  // shared
}

TEST(TileCache, LoaderErrorPropagatesToAllWaitersAndIsRetryable) {
    GatedLoader gate;
    gate.fail = true;
    TileCache cache(4, gate.loader());
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t)
        threads.emplace_back([&] {
            try {
                (void)cache.load("tile_bad");
            } catch (const IoError&) {
                failures.fetch_add(1);
            }
        });
    ASSERT_TRUE(gate.await_started("tile_bad", 1));
    gate.release("tile_bad");
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 3);  // owner and every joiner throw

    // Nothing was cached, so the next load retries the decode — and a
    // now-healthy loader succeeds.
    gate.fail = false;
    EXPECT_NE(cache.load("tile_bad"), nullptr);
    {
        std::lock_guard<std::mutex> lock(gate.mutex);
        EXPECT_EQ(gate.calls["tile_bad"], 2);
    }
}

}  // namespace
}  // namespace pvfp::gis

/// \file test_city_runner.cpp
/// The streaming batch driver against the synthetic city fixture:
/// thread-count-bitwise JSONL, resume-after-kill byte identity,
/// shared-sky == per-roof regeneration, equivalence with the per-roof
/// pipeline, error records, ranking, and the JSONL codec itself.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/gis/city_runner.hpp"
#include "pvfp/gis/fixture.hpp"
#include "pvfp/gis/horizon_cache.hpp"
#include "pvfp/gis/json.hpp"
#include "pvfp/gis/jsonl.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/obs/trace.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::gis {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("pvfp_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string read_file(const std::string& path) {
    std::ifstream is(path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// One cached small city (9 roofs) + the fast run options every test
/// shares.  Fixture generation is cheap; the cache mainly keeps the
/// directory layout in one place.
struct SmallCity {
    std::string dir;
    TileIndex tiles;
    RoofRegistry registry;

    explicit SmallCity(const std::string& name)
        : dir([&] {
              const std::string d = temp_dir(name);
              CityFixtureOptions options;
              options.roofs = 9;
              options.tile_cells = 96;
              generate_city_fixture(d, options);
              return d;
          }()),
          tiles(TileIndex::scan(dir)),
          registry(RoofRegistry::load(dir + "/index.csv")) {}

    CityRunOptions fast_options(const std::string& jsonl) const {
        CityRunOptions options;
        options.config.grid = TimeGrid(60, 100, 8);
        options.config.horizon.azimuth_sectors = 16;
        options.config.suitability.step_stride = 2;
        options.eval.step_stride = 2;
        options.topologies = {{4, 2}};
        options.build.context_margin_m = 4.0;
        options.shard_size = 4;
        options.jsonl_path = jsonl;
        return options;
    }
};

TEST(CityRunner, JsonlCodecRoundTrips) {
    RoofResult r;
    r.id = "roof \"x\"\\1";
    r.ok = true;
    r.valid_cells = 321;
    r.area_w = 40;
    r.area_h = 22;
    r.tilt_deg = 24.1234;
    r.azimuth_deg = 199.0071;
    r.fit_rmse_m = 0.03125;
    r.topologies.push_back({{8, 2}, 1234.567891, 1200.125, 2.87});
    r.topologies.push_back({{8, 4}, 1250.0, 1201.0, 4.079});
    r.best_kwh = 1250.0;
    const std::string line = roof_result_to_jsonl(r);
    const RoofResult back = roof_result_from_jsonl(line);
    EXPECT_EQ(roof_result_to_jsonl(back), line);
    EXPECT_EQ(back.id, r.id);
    EXPECT_EQ(back.topologies.size(), 2u);
    EXPECT_EQ(back.topologies[1].topology.strings, 4);

    RoofResult err;
    err.id = "bad";
    err.error = "tile \"gap\"";
    const std::string err_line = roof_result_to_jsonl(err);
    const RoofResult err_back = roof_result_from_jsonl(err_line);
    EXPECT_FALSE(err_back.ok);
    EXPECT_EQ(err_back.error, err.error);
    EXPECT_EQ(roof_result_to_jsonl(err_back), err_line);

    EXPECT_THROW(roof_result_from_jsonl("{\"id\":\"torn\",\"sta"), IoError);
    EXPECT_THROW(roof_result_from_jsonl(""), IoError);
}

TEST(CityRunner, RunsTheFixtureAndRanksIt) {
    const SmallCity city("run_basic");
    CityRunOptions options =
        city.fast_options(city.dir + "/results.jsonl");
    options.summary_csv_path = city.dir + "/rank.csv";

    const CityRunSummary summary =
        run_city(city.tiles, city.registry, options);
    EXPECT_EQ(summary.total, 9);
    EXPECT_EQ(summary.processed, 9);
    EXPECT_EQ(summary.resumed, 0);
    ASSERT_EQ(summary.results.size(), 9u);

    // One JSONL line per record, registry order.
    std::ifstream is(options.jsonl_path);
    std::string line;
    long lines = 0;
    while (std::getline(is, line)) {
        const RoofResult r = roof_result_from_jsonl(line);
        EXPECT_EQ(r.id, city.registry.record(lines).id);
        ++lines;
    }
    EXPECT_EQ(lines, 9);

    // Ranking is over successful roofs, descending best_kwh.
    EXPECT_EQ(summary.ranking.size(),
              static_cast<std::size_t>(summary.total - summary.failed));
    for (std::size_t i = 1; i < summary.ranking.size(); ++i)
        EXPECT_GE(summary.results[summary.ranking[i - 1]].best_kwh,
                  summary.results[summary.ranking[i]].best_kwh);

    const CsvTable rank = CsvTable::read_file(options.summary_csv_path);
    ASSERT_EQ(rank.row_count(), summary.ranking.size());
    EXPECT_EQ(rank.cell(0, rank.column("rank")), "1");
    EXPECT_EQ(rank.cell(0, rank.column("id")),
              summary.results[summary.ranking[0]].id);
}

TEST(CityRunner, BitwiseIdenticalAcrossThreadCounts) {
    const SmallCity city("run_threads");
    CityRunOptions options = city.fast_options(city.dir + "/t1.jsonl");

    set_thread_count(1);
    (void)run_city(city.tiles, city.registry, options);
    const std::string one = read_file(options.jsonl_path);

    set_thread_count(8);
    options.jsonl_path = city.dir + "/t8.jsonl";
    (void)run_city(city.tiles, city.registry, options);
    const std::string eight = read_file(options.jsonl_path);
    set_thread_count(0);

    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, eight);
}

/// The observability contract end to end: turning the full telemetry
/// stack on (metrics + span timing) must not perturb a single output
/// byte, and the deterministic counters it produces must be identical
/// across thread counts.
TEST(CityRunner, TelemetryOnOffAndThreadCountsGiveSameBytes) {
    const SmallCity city("run_obs");
    CityRunOptions options = city.fast_options(city.dir + "/off.jsonl");

    const bool was_enabled = obs::enabled();
    const bool was_trace = obs::trace_enabled();
    obs::set_enabled(false);
    obs::set_trace_enabled(false);
    (void)run_city(city.tiles, city.registry, options);
    const std::string off = read_file(options.jsonl_path);

    const auto run_with_obs = [&](const std::string& jsonl, int threads) {
        obs::registry().reset_for_tests();
        obs::reset_trace_for_tests();
        obs::set_enabled(true);
        obs::set_trace_enabled(true);
        set_thread_count(threads);
        options.jsonl_path = jsonl;
        (void)run_city(city.tiles, city.registry, options);
        set_thread_count(0);
        std::string counters;
        for (const auto& [name, value] :
             obs::registry().snapshot().counters)
            counters += name + "=" + std::to_string(value) + "\n";
        return std::make_pair(read_file(jsonl), counters);
    };
    const auto [on1, counters1] = run_with_obs(city.dir + "/on1.jsonl", 1);
    const auto [on8, counters8] = run_with_obs(city.dir + "/on8.jsonl", 8);
    obs::registry().reset_for_tests();
    obs::reset_trace_for_tests();
    obs::set_enabled(was_enabled);
    obs::set_trace_enabled(was_trace);

    ASSERT_FALSE(off.empty());
    EXPECT_EQ(off, on1);   // telemetry on/off: same bytes
    EXPECT_EQ(on1, on8);   // and thread-count invariant as ever

#ifndef PVFP_OBS_DISABLED
    // The full deterministic counter set — every span.* call count and
    // every city.* event counter — is bitwise thread-count-invariant.
    EXPECT_EQ(counters1, counters8);
    EXPECT_NE(counters1.find("city.roofs_processed=9"), std::string::npos)
        << counters1;
    EXPECT_NE(counters1.find("span.city.roof=9"), std::string::npos)
        << counters1;
#endif
}

TEST(CityRunner, SharedSkyEqualsPerRoofRegeneration) {
    const SmallCity city("run_shared");
    CityRunOptions options = city.fast_options(city.dir + "/shared.jsonl");
    (void)run_city(city.tiles, city.registry, options);

    CityRunOptions per_roof = options;
    per_roof.share_sky = false;
    per_roof.jsonl_path = city.dir + "/per_roof.jsonl";
    (void)run_city(city.tiles, city.registry, per_roof);

    EXPECT_EQ(read_file(options.jsonl_path),
              read_file(per_roof.jsonl_path));
}

TEST(CityRunner, SharedHorizonIsThreadIdenticalAndDiffersFromCold) {
    const SmallCity city("run_shared_horizon");
    CityRunOptions options = city.fast_options(city.dir + "/sh1.jsonl");
    options.share_horizon = true;
    // Keep the uniform march distance moderate: the shared mode marches
    // the configured distance over real halo terrain for every roof.
    options.config.horizon.max_distance = 40.0;

    set_thread_count(1);
    const CityRunSummary one_summary =
        run_city(city.tiles, city.registry, options);
    const std::string one = read_file(options.jsonl_path);

    set_thread_count(8);
    options.jsonl_path = city.dir + "/sh8.jsonl";
    (void)run_city(city.tiles, city.registry, options);
    const std::string eight = read_file(options.jsonl_path);
    set_thread_count(0);

    ASSERT_FALSE(one.empty());
    EXPECT_EQ(one, eight);
    EXPECT_EQ(one_summary.failed, 0);
    EXPECT_GT(one_summary.horizon_cache_misses, 0u);
    EXPECT_GT(one_summary.horizon_cache_hits, 0u);
    EXPECT_GT(one_summary.horizon_cache_bytes, 0u);

    // The cold path stays on the per-roof max_distance cap (pinned by
    // MatchesThePerRoofPipeline); the shared stream is a different —
    // equally deterministic — artifact: every roof sees the uniform
    // distance over real neighbouring terrain instead of a clamped
    // margin mosaic.
    CityRunOptions cold = city.fast_options(city.dir + "/cold.jsonl");
    cold.config.horizon.max_distance = 40.0;
    (void)run_city(city.tiles, city.registry, cold);
    EXPECT_NE(one, read_file(cold.jsonl_path));
}

TEST(CityRunner, InjectedHorizonCachePersistsAcrossRuns) {
    const SmallCity city("run_injected_horizon");
    CityRunOptions options = city.fast_options(city.dir + "/self.jsonl");
    options.share_horizon = true;
    options.config.horizon.max_distance = 40.0;
    const CityRunSummary self_owned =
        run_city(city.tiles, city.registry, options);
    const std::string self_bytes = read_file(options.jsonl_path);
    ASSERT_FALSE(self_bytes.empty());

    // A caller-owned cache serves the same bytes, and the second run
    // through it — the warm re-rank workload injection exists for —
    // reuses the resident planes instead of re-marching them.
    TileCache tile_cache(8);
    HorizonCacheOptions cache_options;
    cache_options.horizon = options.config.horizon;
    HorizonCache cache(city.tiles, &tile_cache, cache_options);
    options.share_horizon = false;  // the injected cache alone turns it on
    options.shared_horizon_cache = &cache;

    options.jsonl_path = city.dir + "/injected_cold.jsonl";
    const CityRunSummary cold = run_city(city.tiles, city.registry, options);
    EXPECT_EQ(read_file(options.jsonl_path), self_bytes);
    EXPECT_EQ(cold.horizon_cache_misses, self_owned.horizon_cache_misses);
    EXPECT_GT(cold.horizon_cache_misses, 0u);

    options.jsonl_path = city.dir + "/injected_warm.jsonl";
    const CityRunSummary warm = run_city(city.tiles, city.registry, options);
    EXPECT_EQ(read_file(options.jsonl_path), self_bytes);
    // Stats are cumulative across runs: the warm pass added no misses.
    EXPECT_EQ(warm.horizon_cache_misses, cold.horizon_cache_misses);
    EXPECT_GT(warm.horizon_cache_hits, cold.horizon_cache_hits);

    // Serving planes marched under different options would be silent
    // corruption; the runner refuses instead.
    options.config.horizon.azimuth_sectors += 4;
    EXPECT_THROW(run_city(city.tiles, city.registry, options),
                 InvalidArgument);
}

TEST(CityRunner, ResumeAfterKillReproducesTheFullStream) {
    const SmallCity city("run_resume");
    CityRunOptions options = city.fast_options(city.dir + "/full.jsonl");
    const CityRunSummary full = run_city(city.tiles, city.registry, options);
    const std::string full_bytes = read_file(options.jsonl_path);

    // Kill mid-write: keep 2 whole lines plus a torn third.
    std::istringstream stream(full_bytes);
    std::string l1, l2, l3;
    std::getline(stream, l1);
    std::getline(stream, l2);
    std::getline(stream, l3);
    const std::string torn =
        l1 + "\n" + l2 + "\n" + l3.substr(0, l3.size() / 2);
    options.jsonl_path = city.dir + "/killed.jsonl";
    {
        std::ofstream os(options.jsonl_path);
        os << torn;
    }
    options.resume = true;
    const CityRunSummary resumed =
        run_city(city.tiles, city.registry, options);
    EXPECT_EQ(resumed.resumed, 2);
    EXPECT_EQ(resumed.processed, 7);
    EXPECT_EQ(read_file(options.jsonl_path), full_bytes);

    // The resumed summary ranks exactly like the uninterrupted one.
    ASSERT_EQ(resumed.ranking.size(), full.ranking.size());
    for (std::size_t i = 0; i < full.ranking.size(); ++i)
        EXPECT_EQ(resumed.results[resumed.ranking[i]].id,
                  full.results[full.ranking[i]].id);

    // Resuming a *complete* stream recomputes nothing.
    const CityRunSummary noop = run_city(city.tiles, city.registry, options);
    EXPECT_EQ(noop.resumed, 9);
    EXPECT_EQ(noop.processed, 0);
    EXPECT_EQ(read_file(options.jsonl_path), full_bytes);
}

TEST(CityRunner, MatchesThePerRoofPipeline) {
    const SmallCity city("run_equiv");
    CityRunOptions options = city.fast_options(city.dir + "/equiv.jsonl");
    const CityRunSummary summary =
        run_city(city.tiles, city.registry, options);

    // Recompute roof 0 and roof 4 by hand through make_scenario +
    // prepare_scenario + compare_placements, deriving the per-roof
    // config exactly as the runner documents, and require the identical
    // JSONL line.
    for (const long i : {0L, 4L}) {
        const RoofRecord& rec = city.registry.record(i);
        RoofPlaneFit fit;
        const core::RoofScenario scenario =
            make_scenario(rec, city.tiles, options.build, nullptr, &fit);
        core::ScenarioConfig config = options.config;
        config.cell_size = city.tiles.cell_size();
        if (rec.has_location) {
            config.location.latitude_deg = rec.latitude_deg;
            config.location.longitude_deg = rec.longitude_deg;
        }
        config.horizon.max_distance = std::min(
            config.horizon.max_distance,
            options.build.context_margin_m +
                std::hypot(rec.bbox.width(), rec.bbox.height()));
        const core::PreparedScenario prepared =
            core::prepare_scenario(scenario, config);

        RoofResult expected;
        expected.id = rec.id;
        expected.ok = true;
        expected.valid_cells = prepared.area.valid_count;
        expected.area_w = prepared.area.width;
        expected.area_h = prepared.area.height;
        expected.tilt_deg = fit.tilt_deg;
        expected.azimuth_deg = fit.azimuth_deg;
        expected.fit_rmse_m = fit.rmse_m;
        for (const pv::Topology& topology : options.topologies) {
            const core::PlacementComparison cmp = core::compare_placements(
                prepared, topology, options.greedy, options.eval);
            RoofTopologyResult t;
            t.topology = topology;
            t.proposed_kwh = cmp.proposed_eval.energy_kwh;
            t.compact_kwh = cmp.traditional_eval.energy_kwh;
            t.improvement_pct = cmp.improvement() * 100.0;
            expected.best_kwh = std::max(expected.best_kwh, t.proposed_kwh);
            expected.topologies.push_back(t);
        }
        EXPECT_EQ(
            roof_result_to_jsonl(expected),
            roof_result_to_jsonl(summary.results[static_cast<std::size_t>(i)]))
            << "roof " << i;
    }
}

TEST(CityRunner, BadRoofYieldsAnErrorRecordAndTheRunContinues) {
    const SmallCity city("run_badroof");
    // Append an off-tile record between valid ones by rewriting the CSV.
    const std::string csv = read_file(city.dir + "/index.csv");
    const std::string patched_path = city.dir + "/patched.csv";
    {
        std::ofstream os(patched_path);
        std::istringstream is(csv);
        std::string line;
        long n = 0;
        while (std::getline(is, line)) {
            os << line << "\n";
            if (++n == 3)  // header + 2 records, then the bad one
                os << "roof_off,9000,9000,9010,9008,45.07,7.69,\n";
        }
    }
    const RoofRegistry registry = RoofRegistry::load(patched_path);
    CityRunOptions options = city.fast_options(city.dir + "/bad.jsonl");
    const CityRunSummary summary = run_city(city.tiles, registry, options);
    EXPECT_EQ(summary.total, 10);
    EXPECT_EQ(summary.failed, 1);
    const RoofResult& bad = summary.results[2];
    EXPECT_EQ(bad.id, "roof_off");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("footprint"), std::string::npos);
    EXPECT_TRUE(summary.results[3].ok);
}

TEST(CityRunner, Validation) {
    const SmallCity city("run_validate");
    CityRunOptions options = city.fast_options("");
    EXPECT_THROW(run_city(city.tiles, city.registry, options),
                 InvalidArgument);
    options = city.fast_options(city.dir + "/x.jsonl");
    options.topologies.clear();
    EXPECT_THROW(run_city(city.tiles, city.registry, options),
                 InvalidArgument);
    options = city.fast_options(city.dir + "/x.jsonl");
    options.shard_size = 0;
    EXPECT_THROW(run_city(city.tiles, city.registry, options),
                 InvalidArgument);
}

// ---- The shared longest-valid-prefix scanner (PR-6 bugfix) ------------

/// Validator accepting any JSON object line (the shape both resume and
/// replay build on, minus their id/seq checks).
bool valid_object(long, const std::string& line) {
    try {
        return JsonValue::parse(line).is_object();
    } catch (const std::exception&) {
        return false;
    }
}

TEST(JsonlPrefix, KeepsAFinalRecordWithoutTrailingNewline) {
    const std::string dir = temp_dir("jsonl_nonl");
    const std::string path = dir + "/s.jsonl";
    {
        std::ofstream os(path, std::ios::binary);
        os << "{\"id\":\"a\"}\n{\"id\":\"b\"}";  // killed before the '\n'
    }
    const auto prefix = read_jsonl_prefix(path, valid_object);
    ASSERT_EQ(prefix.size(), 2u);
    EXPECT_EQ(prefix[1], "{\"id\":\"b\"}");
}

TEST(JsonlPrefix, StripsCrlfBeforeValidation) {
    const std::string dir = temp_dir("jsonl_crlf");
    const std::string path = dir + "/s.jsonl";
    {
        std::ofstream os(path, std::ios::binary);
        os << "{\"id\":\"a\"}\r\n{\"id\":\"b\"}\r\n";
    }
    const auto prefix = read_jsonl_prefix(path, valid_object);
    ASSERT_EQ(prefix.size(), 2u);
    // The returned lines are ending-free: re-appending them with '\n'
    // reproduces a clean LF stream (what resume's byte-identity needs).
    EXPECT_EQ(prefix[0], "{\"id\":\"a\"}");
    EXPECT_EQ(prefix[1], "{\"id\":\"b\"}");
}

TEST(JsonlPrefix, TornWriteInsideAnEscapedStringEndsTheScan) {
    const std::string dir = temp_dir("jsonl_torn");
    const std::string path = dir + "/s.jsonl";
    {
        std::ofstream os(path, std::ios::binary);
        // The torn tail stops mid-escape: `"id":"x\"` — a prefix that
        // still *looks* string-like but never closes the object.
        os << "{\"id\":\"a\"}\n{\"id\":\"x\\\"";
    }
    const auto prefix = read_jsonl_prefix(path, valid_object);
    ASSERT_EQ(prefix.size(), 1u);
    EXPECT_EQ(prefix[0], "{\"id\":\"a\"}");
}

TEST(JsonlPrefix, EmptyLineMissingFileAndMaxLines) {
    const std::string dir = temp_dir("jsonl_misc");
    EXPECT_TRUE(
        read_jsonl_prefix(dir + "/absent.jsonl", valid_object).empty());

    const std::string path = dir + "/s.jsonl";
    {
        std::ofstream os(path, std::ios::binary);
        // Double newline: the empty line ends the prefix even though a
        // valid record follows it.
        os << "{\"id\":\"a\"}\n\n{\"id\":\"b\"}\n";
    }
    EXPECT_EQ(read_jsonl_prefix(path, valid_object).size(), 1u);

    {
        std::ofstream os(path, std::ios::binary);
        os << "{\"k\":0}\n{\"k\":1}\n{\"k\":2}\n";
    }
    EXPECT_EQ(read_jsonl_prefix(path, valid_object, 2).size(), 2u);
    long calls = 0;
    (void)read_jsonl_prefix(path, [&](long k, const std::string& line) {
        EXPECT_EQ(k, calls);  // 0-based, in order
        ++calls;
        return valid_object(k, line);
    });
    EXPECT_EQ(calls, 3);
}

TEST(CityRunner, ResumesAStreamKilledBeforeTheTrailingNewline) {
    const SmallCity city("run_resume_nonl");
    CityRunOptions options = city.fast_options(city.dir + "/full.jsonl");
    (void)run_city(city.tiles, city.registry, options);
    const std::string full_bytes = read_file(options.jsonl_path);

    // Kill *between* a record's bytes and its '\n': the record is
    // complete and must be kept, not recomputed.
    std::istringstream stream(full_bytes);
    std::string l1, l2;
    std::getline(stream, l1);
    std::getline(stream, l2);
    options.jsonl_path = city.dir + "/killed.jsonl";
    {
        std::ofstream os(options.jsonl_path, std::ios::binary);
        os << l1 << "\n" << l2;  // no trailing newline
    }
    options.resume = true;
    const CityRunSummary resumed =
        run_city(city.tiles, city.registry, options);
    EXPECT_EQ(resumed.resumed, 2);
    EXPECT_EQ(resumed.processed, 7);
    EXPECT_EQ(read_file(options.jsonl_path), full_bytes);
}

TEST(CityRunner, ResumesACrlfRewrittenStream) {
    const SmallCity city("run_resume_crlf");
    CityRunOptions options = city.fast_options(city.dir + "/full.jsonl");
    (void)run_city(city.tiles, city.registry, options);
    const std::string full_bytes = read_file(options.jsonl_path);

    // A partial stream that crossed a text-mode transfer: LF -> CRLF.
    std::istringstream stream(full_bytes);
    std::string l1, l2, l3;
    std::getline(stream, l1);
    std::getline(stream, l2);
    std::getline(stream, l3);
    options.jsonl_path = city.dir + "/crlf.jsonl";
    {
        std::ofstream os(options.jsonl_path, std::ios::binary);
        os << l1 << "\r\n" << l2 << "\r\n" << l3 << "\r\n";
    }
    options.resume = true;
    const CityRunSummary resumed =
        run_city(city.tiles, city.registry, options);
    EXPECT_EQ(resumed.resumed, 3);
    EXPECT_EQ(resumed.processed, 6);
    // Resume rewrites the kept prefix as clean LF lines before
    // appending, so the recovered stream is byte-identical to an
    // uninterrupted run — CRLF artifacts do not survive.
    EXPECT_EQ(read_file(options.jsonl_path), full_bytes);
}

}  // namespace
}  // namespace pvfp::gis

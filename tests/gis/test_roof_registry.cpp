/// \file test_roof_registry.cpp
/// Footprint index loading (CSV + JSON parity), plane fitting, and the
/// record -> RoofScenario assembly against synthetic tiles.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/gis/roof_registry.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::gis {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("pvfp_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string write_text(const std::string& dir, const std::string& name,
                       const std::string& content) {
    const std::string path = dir + "/" + name;
    std::ofstream os(path);
    os << content;
    return path;
}

TEST(RoofRegistry, CsvAndJsonLoadTheSameRecords) {
    const std::string dir = temp_dir("registry_parity");
    const std::string csv = write_text(
        dir, "index.csv",
        "id,min_x,min_y,max_x,max_y,lat,lon,polygon\n"
        "r1,0,0,10,8,45.1,7.7,\n"
        "r2,12,0,20,6,,,\"0 0;8 0;8 6\"\n");
    const std::string json = write_text(
        dir, "index.json",
        "[{\"id\": \"r1\", \"bbox\": [0, 0, 10, 8], \"lat\": 45.1, "
        "\"lon\": 7.7},\n"
        " {\"id\": \"r2\", \"bbox\": [12, 0, 20, 6], "
        "\"polygon\": [[0, 0], [8, 0], [8, 6]]}]\n");

    const RoofRegistry a = RoofRegistry::load(csv);
    const RoofRegistry b = RoofRegistry::load(json);
    ASSERT_EQ(a.size(), 2);
    ASSERT_EQ(b.size(), 2);
    for (long i = 0; i < 2; ++i) {
        EXPECT_EQ(a.record(i).id, b.record(i).id);
        EXPECT_DOUBLE_EQ(a.record(i).bbox.x0, b.record(i).bbox.x0);
        EXPECT_DOUBLE_EQ(a.record(i).bbox.y1, b.record(i).bbox.y1);
        EXPECT_EQ(a.record(i).has_location, b.record(i).has_location);
        EXPECT_EQ(a.record(i).polygon.size(), b.record(i).polygon.size());
    }
    EXPECT_TRUE(a.record(0).has_location);
    EXPECT_DOUBLE_EQ(a.record(0).latitude_deg, 45.1);
    EXPECT_FALSE(a.record(1).has_location);
    ASSERT_EQ(a.record(1).polygon.size(), 3u);
    EXPECT_DOUBLE_EQ(a.record(1).polygon[1][0], 8.0);
}

TEST(RoofRegistry, RejectsBrokenIndexes) {
    const std::string dir = temp_dir("registry_broken");
    // Duplicate ids.
    EXPECT_THROW(RoofRegistry::load(write_text(
                     dir, "dup.csv",
                     "id,min_x,min_y,max_x,max_y\nr1,0,0,1,1\nr1,2,0,3,1\n")),
                 IoError);
    // Degenerate bbox.
    EXPECT_THROW(RoofRegistry::load(write_text(
                     dir, "degen.csv",
                     "id,min_x,min_y,max_x,max_y\nr1,5,0,5,1\n")),
                 IoError);
    // Missing column.
    EXPECT_THROW(RoofRegistry::load(write_text(
                     dir, "cols.csv", "id,min_x,min_y,max_x\nr1,0,0,1\n")),
                 IoError);
    // Two-vertex polygon.
    EXPECT_THROW(RoofRegistry::load(write_text(
                     dir, "poly.csv",
                     "id,min_x,min_y,max_x,max_y,polygon\n"
                     "r1,0,0,4,4,\"0 0;1 1\"\n")),
                 IoError);
    // JSON root must be an array.
    EXPECT_THROW(
        RoofRegistry::load(write_text(dir, "obj.json", "{\"id\": \"x\"}")),
        IoError);
    // Empty index.
    EXPECT_THROW(RoofRegistry::load(write_text(
                     dir, "empty.csv", "id,min_x,min_y,max_x,max_y\n")),
                 IoError);
}

TEST(FitRoofPlane, RecoversAKnownPlaneExactly) {
    // z = 0.30*lx - 0.18*ly + 4.
    const int w = 30, h = 24;
    geo::Raster dsm(w, h, 0.2, 0.0);
    pvfp::Grid2D<unsigned char> mask(w, h, 1);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            dsm(x, y) = 0.30 * dsm.local_x(x) - 0.18 * dsm.local_y(y) + 4.0;

    const RoofPlaneFit fit = fit_roof_plane(dsm, mask);
    EXPECT_NEAR(fit.a, 0.30, 1e-12);
    EXPECT_NEAR(fit.b, -0.18, 1e-12);
    EXPECT_NEAR(fit.c, 4.0, 1e-10);
    EXPECT_NEAR(fit.rmse_m, 0.0, 1e-10);
    EXPECT_EQ(fit.cells, w * h);
    // Downslope of z rising east & falling south: west-of-south... the
    // gradient (0.30, -0.18) points east/up-north, downslope azimuth =
    // atan2(+(-0.30)... check against the closed form.
    EXPECT_NEAR(fit.tilt_deg, rad2deg(std::atan(std::hypot(0.30, 0.18))),
                1e-9);
    const double az = std::atan2(-0.30, -0.18);
    EXPECT_NEAR(fit.azimuth_deg, rad2deg(az < 0 ? az + kTwoPi : az), 1e-9);
}

TEST(FitRoofPlane, TrimmedRefitShrugsOffAChimney) {
    const int w = 40, h = 30;
    geo::Raster dsm(w, h, 0.2, 0.0);
    pvfp::Grid2D<unsigned char> mask(w, h, 1);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            dsm(x, y) = 0.25 * dsm.local_y(y) + 3.0;
    // A 3x3 chimney 1.2 m proud of the plane.
    for (int y = 10; y < 13; ++y)
        for (int x = 20; x < 23; ++x) dsm(x, y) += 1.2;

    const RoofPlaneFit untrimmed = fit_roof_plane(dsm, mask, 0.0);
    const RoofPlaneFit trimmed = fit_roof_plane(dsm, mask, 3.0);
    // The trimmed fit must sit much closer to the true plane.
    EXPECT_LT(std::abs(trimmed.a), std::abs(untrimmed.a) + 1e-9);
    EXPECT_NEAR(trimmed.a, 0.0, 5e-4);
    EXPECT_NEAR(trimmed.b, 0.25, 5e-3);
    EXPECT_LT(trimmed.rmse_m, untrimmed.rmse_m);
    EXPECT_LT(trimmed.cells, static_cast<long>(w) * h);
}

TEST(FitRoofPlane, NeedsThreeCells) {
    geo::Raster dsm(4, 4, 0.2, 1.0);
    pvfp::Grid2D<unsigned char> mask(4, 4, 0);
    mask(0, 0) = mask(1, 1) = 1;
    EXPECT_THROW(fit_roof_plane(dsm, mask), Infeasible);
}

/// One synthetic monopitch house written as two tiles, with a chimney.
struct HouseTiles {
    std::string dir;
    static constexpr double kTilt = 24.0;
    static constexpr double kAzimuth = 180.0;
    // House plan rect in world coords.
    static constexpr double kX0 = 104.0, kY0 = 203.0;
    static constexpr double kW = 9.0, kD = 7.0;

    explicit HouseTiles(const std::string& name) : dir(temp_dir(name)) {
        geo::SceneBuilder scene(24.0, 16.0, 0.0);
        geo::MonopitchRoof roof;
        roof.x = 4.0;  // local: world - (100, 200), y flipped below
        roof.y = 6.0;
        roof.w = kW;
        roof.d = kD;
        roof.eave_height = 3.5;
        roof.tilt_deg = kTilt;
        roof.azimuth_deg = kAzimuth;
        scene.add_roof(roof);
        scene.add_box({6.0, 8.0, 0.6, 0.6, 1.2, geo::HeightRef::Surface});
        const geo::Raster dsm = scene.rasterize(0.2);
        // Scene local frame -> world (100, 200): split into 2 tiles.
        const int half = dsm.width() / 2;
        for (int t = 0; t < 2; ++t) {
            const int w = t == 0 ? half : dsm.width() - half;
            geo::Raster tile(w, dsm.height(), 0.2, 0.0,
                             100.0 + (t == 0 ? 0 : half) * 0.2,
                             200.0 + 16.0);
            for (int y = 0; y < dsm.height(); ++y)
                for (int x = 0; x < w; ++x)
                    tile(x, y) = dsm((t == 0 ? 0 : half) + x, y);
            geo::write_asc_grid_file(tile, dir + "/t" + std::to_string(t) +
                                               ".asc");
        }
    }

    RoofRecord record() const {
        RoofRecord rec;
        rec.id = "house";
        // World bbox: local (4,6)-(13,13) with y flip about extent 16.
        rec.bbox = {kX0, kY0, kX0 + kW, kY0 + kD};
        return rec;
    }
};

TEST(MakeScenario, RecoversOrientationAndExcludesTheChimney) {
    const HouseTiles house("make_scenario");
    const TileIndex tiles = TileIndex::scan(house.dir);
    RoofPlaneFit fit;
    const core::RoofScenario scenario =
        make_scenario(house.record(), tiles, {}, nullptr, &fit);

    EXPECT_EQ(scenario.name, "house");
    ASSERT_NE(scenario.dsm, nullptr);
    ASSERT_NE(scenario.placement_mask, nullptr);
    EXPECT_NEAR(fit.tilt_deg, HouseTiles::kTilt, 0.6);
    EXPECT_NEAR(fit.azimuth_deg, HouseTiles::kAzimuth, 2.0);
    EXPECT_LT(fit.rmse_m, 0.05);

    // End to end through the pipeline: the chimney and its clearance
    // must be keep-out, the rest placeable.
    core::ScenarioConfig config;
    config.grid = TimeGrid(60, 172, 2);
    config.cell_size = tiles.cell_size();
    config.horizon.azimuth_sectors = 16;
    config.horizon.max_distance = 10.0;
    const core::PreparedScenario prepared =
        core::prepare_scenario(scenario, config);
    EXPECT_GT(prepared.area.valid_count, 400);
    // 0.6 m chimney = 9 cells, plus clearance ring: meaningfully fewer
    // valid cells than the bare footprint bbox.
    const int bbox_cells = static_cast<int>(
        (HouseTiles::kW / 0.2) * (HouseTiles::kD / 0.2));
    EXPECT_LT(prepared.area.valid_count, bbox_cells - 9);
    EXPECT_NEAR(rad2deg(prepared.area.tilt_rad), HouseTiles::kTilt, 0.6);
}

TEST(MakeScenario, PolygonMasksThePlacementArea) {
    const HouseTiles house("make_scenario_poly");
    const TileIndex tiles = TileIndex::scan(house.dir);

    RoofRecord plain = house.record();
    RoofRecord clipped = house.record();
    // Keep only the western 5 m of the footprint.
    clipped.polygon = {{HouseTiles::kX0, HouseTiles::kY0},
                       {HouseTiles::kX0 + 5.0, HouseTiles::kY0},
                       {HouseTiles::kX0 + 5.0, HouseTiles::kY0 + 7.0},
                       {HouseTiles::kX0, HouseTiles::kY0 + 7.0}};

    const core::RoofScenario full = make_scenario(plain, tiles);
    const core::RoofScenario cut = make_scenario(clipped, tiles);
    long full_cells = 0, cut_cells = 0;
    for (const auto v : full.placement_mask->data()) full_cells += v != 0;
    for (const auto v : cut.placement_mask->data()) cut_cells += v != 0;
    EXPECT_GT(full_cells, cut_cells);
    // ~5/9 of the footprint survives (mask counts footprint cells, before
    // obstacle/clearance analysis).
    EXPECT_NEAR(static_cast<double>(cut_cells) /
                    static_cast<double>(full_cells),
                5.0 / 9.0, 0.05);
}

TEST(MakeScenario, NoDataGapsAreMaskedAndBackfilled) {
    const std::string dir = temp_dir("make_scenario_nodata");
    geo::Raster tile(40, 30, 0.5, 2.0, 0.0, 15.0);
    tile.set_nodata(-9999.0);
    for (int y = 8; y < 22; ++y)
        for (int x = 10; x < 30; ++x) tile(x, y) = 6.0;  // flat roof slab
    for (int y = 12; y < 15; ++y)
        for (int x = 14; x < 17; ++x) tile(x, y) = -9999.0;  // scan gap
    geo::write_asc_grid_file(tile, dir + "/t.asc");

    const TileIndex tiles = TileIndex::scan(dir);
    RoofRecord rec;
    rec.id = "slab";
    rec.bbox = {5.0, 4.0, 15.0, 11.0};
    const core::RoofScenario scenario = make_scenario(rec, tiles);

    // The packaged DSM is fully backfilled (no NODATA pit for the
    // horizon scan), and the mask excludes exactly the 3x3 gap from the
    // footprint.
    const auto& mask = *scenario.placement_mask;
    const auto& dsm = *scenario.dsm;
    for (int y = 0; y < dsm.height(); ++y)
        for (int x = 0; x < dsm.width(); ++x)
            EXPECT_NE(dsm(x, y), dsm.nodata());
    long masked = 0;
    for (const auto v : mask.data()) masked += v != 0;
    const long footprint = static_cast<long>((10.0 / 0.5) * (7.0 / 0.5));
    EXPECT_EQ(masked, footprint - 9);
}

TEST(MakeScenario, OffTileFootprintIsInfeasible) {
    const HouseTiles house("make_scenario_off");
    const TileIndex tiles = TileIndex::scan(house.dir);
    RoofRecord rec;
    rec.id = "elsewhere";
    rec.bbox = {900.0, 900.0, 910.0, 908.0};
    EXPECT_THROW(make_scenario(rec, tiles), Infeasible);
}

}  // namespace
}  // namespace pvfp::gis

/// Tests for Grid2D and SummedAreaTable.

#include <gtest/gtest.h>

#include "pvfp/util/error.hpp"
#include "pvfp/util/grid2d.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp {
namespace {

TEST(Grid2D, ConstructionAndFill) {
    Grid2D<int> g(4, 3, 7);
    EXPECT_EQ(g.width(), 4);
    EXPECT_EQ(g.height(), 3);
    EXPECT_EQ(g.size(), 12u);
    EXPECT_EQ(g.at(0, 0), 7);
    EXPECT_EQ(g.at(3, 2), 7);
    g.fill(-1);
    EXPECT_EQ(g.at(2, 1), -1);
}

TEST(Grid2D, EmptyGrid) {
    Grid2D<double> g;
    EXPECT_TRUE(g.empty());
    EXPECT_EQ(g.width(), 0);
    EXPECT_FALSE(g.in_bounds(0, 0));
}

TEST(Grid2D, NegativeDimensionsThrow) {
    EXPECT_THROW(Grid2D<int>(-1, 3), InvalidArgument);
    EXPECT_THROW(Grid2D<int>(3, -1), InvalidArgument);
}

TEST(Grid2D, BoundsChecking) {
    Grid2D<int> g(2, 2);
    EXPECT_THROW(g.at(2, 0), InvalidArgument);
    EXPECT_THROW(g.at(0, 2), InvalidArgument);
    EXPECT_THROW(g.at(-1, 0), InvalidArgument);
    EXPECT_TRUE(g.in_bounds(1, 1));
    EXPECT_FALSE(g.in_bounds(2, 1));
}

TEST(Grid2D, RowMajorIndexing) {
    Grid2D<int> g(3, 2);
    int v = 0;
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 3; ++x) g(x, y) = v++;
    // data() must be row-major.
    EXPECT_EQ(g.data()[0], 0);
    EXPECT_EQ(g.data()[3], 3);  // start of row 1
    EXPECT_EQ(g.index(2, 1), 5u);
}

TEST(Grid2D, EqualityIsValueBased) {
    Grid2D<int> a(2, 2, 1);
    Grid2D<int> b(2, 2, 1);
    EXPECT_EQ(a, b);
    b(1, 1) = 2;
    EXPECT_NE(a, b);
}

TEST(SummedAreaTable, MatchesBruteForceOnRandomGrid) {
    Rng rng(31);
    Grid2D<double> g(17, 11);
    for (int y = 0; y < 11; ++y)
        for (int x = 0; x < 17; ++x) g(x, y) = rng.uniform(-3.0, 3.0);
    SummedAreaTable sat(g);
    for (int trial = 0; trial < 200; ++trial) {
        const int x0 = static_cast<int>(rng.uniform_int(17));
        const int y0 = static_cast<int>(rng.uniform_int(11));
        const int w = static_cast<int>(rng.uniform_int(17 - x0 + 1));
        const int h = static_cast<int>(rng.uniform_int(11 - y0 + 1));
        double expected = 0.0;
        for (int y = y0; y < y0 + h; ++y)
            for (int x = x0; x < x0 + w; ++x) expected += g(x, y);
        EXPECT_NEAR(sat.rect_sum(x0, y0, w, h), expected, 1e-9);
    }
}

TEST(SummedAreaTable, MaskedCellsContributeZero) {
    Grid2D<double> g(3, 3, 5.0);
    Grid2D<unsigned char> mask(3, 3, 1);
    mask(1, 1) = 0;
    SummedAreaTable sat(g, &mask);
    EXPECT_DOUBLE_EQ(sat.rect_sum(0, 0, 3, 3), 5.0 * 8);
    EXPECT_DOUBLE_EQ(sat.rect_sum(1, 1, 1, 1), 0.0);
}

TEST(SummedAreaTable, FullAndEmptyRects) {
    Grid2D<double> g(4, 4, 1.0);
    SummedAreaTable sat(g);
    EXPECT_DOUBLE_EQ(sat.rect_sum(0, 0, 4, 4), 16.0);
    EXPECT_DOUBLE_EQ(sat.rect_sum(2, 2, 0, 0), 0.0);
}

TEST(SummedAreaTable, OutOfBoundsRectThrows) {
    Grid2D<double> g(4, 4, 1.0);
    SummedAreaTable sat(g);
    EXPECT_THROW(sat.rect_sum(1, 1, 4, 1), InvalidArgument);
    EXPECT_THROW(sat.rect_sum(-1, 0, 1, 1), InvalidArgument);
}

TEST(SummedAreaTable, MaskDimensionMismatchThrows) {
    Grid2D<double> g(4, 4, 1.0);
    Grid2D<unsigned char> mask(3, 4, 1);
    EXPECT_THROW(SummedAreaTable(g, &mask), InvalidArgument);
}

}  // namespace
}  // namespace pvfp

/// \file test_cli.cpp
/// Checked CLI value parsing: whole-string acceptance, the malformed /
/// trailing-garbage / overflow rejections that used to reach atoi as
/// silent zeros, and the flag-naming error messages.

#include <gtest/gtest.h>

#include "pvfp/util/cli.hpp"

namespace pvfp::cli {
namespace {

TEST(Cli, ParsesWellFormedIntegers) {
    EXPECT_EQ(parse_int("--shard", "32"), 32);
    EXPECT_EQ(parse_int("--shard", "-5"), -5);
    EXPECT_EQ(parse_long("--stride", "4"), 4L);
    EXPECT_EQ(parse_u64("--seed", "18446744073709551615"),
              18446744073709551615ull);
    EXPECT_EQ(parse_u64("--seed", "0"), 0ull);
}

TEST(Cli, RejectsMalformedIntegers) {
    // The motivating bug: `--shard=abc` must become a UsageError, not
    // atoi's silent 0 (and never an uncaught std::invalid_argument).
    EXPECT_THROW(parse_int("--shard", "abc"), UsageError);
    EXPECT_THROW(parse_int("--shard", ""), UsageError);
    EXPECT_THROW(parse_int("--shard", "12abc"), UsageError);  // garbage tail
    EXPECT_THROW(parse_int("--shard", "1 2"), UsageError);
    EXPECT_THROW(parse_int("--shard", " 12"), UsageError);
    EXPECT_THROW(parse_int("--shard", "999999999999999999999"), UsageError);
    EXPECT_THROW(parse_u64("--seed", "-1"), UsageError);
    EXPECT_THROW(parse_u64("--seed", "0x10"), UsageError);
}

TEST(Cli, EnforcesRanges) {
    EXPECT_EQ(parse_int("--minutes", "1", 1, 1440), 1);
    EXPECT_EQ(parse_int("--minutes", "1440", 1, 1440), 1440);
    EXPECT_THROW(parse_int("--minutes", "0", 1, 1440), UsageError);
    EXPECT_THROW(parse_int("--minutes", "1441", 1, 1440), UsageError);
    EXPECT_THROW(parse_long("--stride", "0", 1), UsageError);
}

TEST(Cli, ParsesAndRejectsDoubles) {
    EXPECT_DOUBLE_EQ(parse_double("--margin", "8.5"), 8.5);
    EXPECT_DOUBLE_EQ(parse_double("--margin", "-2e-3"), -2e-3);
    EXPECT_THROW(parse_double("--margin", "abc"), UsageError);
    EXPECT_THROW(parse_double("--margin", ""), UsageError);
    EXPECT_THROW(parse_double("--margin", "1.5x"), UsageError);
    EXPECT_THROW(parse_double("--margin", "nan"), UsageError);
    EXPECT_THROW(parse_double("--margin", "-1", 0.0), UsageError);
    EXPECT_THROW(parse_double("--margin", "1e999"), UsageError);
}

TEST(Cli, ErrorMessageNamesTheFlagAndValue) {
    try {
        parse_int("--shard", "abc");
        FAIL() << "expected UsageError";
    } catch (const UsageError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("--shard"), std::string::npos) << what;
        EXPECT_NE(what.find("'abc'"), std::string::npos) << what;
    }
}

}  // namespace
}  // namespace pvfp::cli

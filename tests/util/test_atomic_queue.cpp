/// \file test_atomic_queue.cpp
/// The bounded lock-free MPSC ring: capacity rounding, FIFO order,
/// full/empty edges, move-only payloads, per-producer FIFO under a
/// multi-producer stress, and the blocking push/pop handshake.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "pvfp/util/atomic_queue.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp {
namespace {

TEST(AtomicQueue, CapacityRoundsUpToPowerOfTwo) {
    EXPECT_EQ(AtomicQueue<int>(1).capacity(), 2u);  // 1-cell rings degenerate
    EXPECT_EQ(AtomicQueue<int>(2).capacity(), 2u);
    EXPECT_EQ(AtomicQueue<int>(3).capacity(), 4u);
    EXPECT_EQ(AtomicQueue<int>(1000).capacity(), 1024u);
    EXPECT_THROW(AtomicQueue<int>(0), InvalidArgument);
}

TEST(AtomicQueue, FifoAndFullEmptyEdges) {
    AtomicQueue<int> queue(4);
    int out = -1;
    EXPECT_FALSE(queue.try_pop(out));  // empty
    for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.try_push(int(i)));
    EXPECT_FALSE(queue.try_push(99));  // full
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(queue.try_pop(out));
        EXPECT_EQ(out, i);
    }
    EXPECT_FALSE(queue.try_pop(out));  // drained

    // The ring keeps working after wrap-around.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(queue.try_push(10 * round + i));
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(queue.try_pop(out));
            EXPECT_EQ(out, 10 * round + i);
        }
    }
}

TEST(AtomicQueue, MoveOnlyPayloadSurvivesAFailedPush) {
    AtomicQueue<std::unique_ptr<int>> queue(2);
    EXPECT_TRUE(queue.try_push(std::make_unique<int>(6)));
    EXPECT_TRUE(queue.try_push(std::make_unique<int>(7)));
    // try_push takes an rvalue reference: a failed push must leave the
    // caller's value intact (the blocking wrapper retries with it).
    std::unique_ptr<int> extra = std::make_unique<int>(8);
    EXPECT_FALSE(queue.try_push(std::move(extra)));
    ASSERT_NE(extra, nullptr);
    EXPECT_EQ(*extra, 8);
    std::unique_ptr<int> out;
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(*out, 6);
    EXPECT_TRUE(queue.try_push(std::move(extra)));
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(*out, 7);
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(*out, 8);
}

TEST(AtomicQueue, MultiProducerStressKeepsPerProducerFifo) {
    constexpr int kProducers = 4;
    constexpr int kPerProducer = 20000;
    // Tiny ring so producers hit the full path constantly.
    AtomicQueue<int> queue(8);

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i)
                queue.push(p * kPerProducer + i);
        });
    }

    // Single consumer (the daemon's dispatcher shape): every value
    // arrives exactly once, and each producer's values in their order.
    std::vector<int> next(kProducers, 0);
    for (long seen = 0; seen < long(kProducers) * kPerProducer; ++seen) {
        const int value = queue.pop();
        const int p = value / kPerProducer;
        const int i = value % kPerProducer;
        ASSERT_GE(p, 0);
        ASSERT_LT(p, kProducers);
        ASSERT_EQ(i, next[p]) << "producer " << p << " reordered";
        ++next[p];
    }
    for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
    int out = 0;
    EXPECT_FALSE(queue.try_pop(out));

    for (std::thread& t : producers) t.join();
}

TEST(AtomicQueue, BlockingPopWakesOnPush) {
    AtomicQueue<std::string> queue(2);
    std::string got;
    std::thread consumer([&] { got = queue.pop(); });  // sleeps: empty
    queue.push(std::string("wake"));
    consumer.join();
    EXPECT_EQ(got, "wake");

    // And the mirror image: a producer blocked on a full ring wakes
    // when the consumer frees a slot.
    queue.push(std::string("a"));
    queue.push(std::string("b"));
    std::thread producer([&] { queue.push(std::string("c")); });  // full
    EXPECT_EQ(queue.pop(), "a");
    producer.join();
    EXPECT_EQ(queue.pop(), "b");
    EXPECT_EQ(queue.pop(), "c");
}

}  // namespace
}  // namespace pvfp

/// Tests for the deterministic RNG: reproducibility, ranges, and rough
/// distribution shape (no statistical test framework needed — wide bounds).

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/stats.hpp"

namespace pvfp {
namespace {

TEST(Rng, SameSeedSameStream) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next_u64() == b.next_u64()) ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, KnownFirstValueIsStable) {
    // Regression anchor: any change to seeding/stream breaks experiment
    // reproducibility and must be deliberate.
    Rng rng(42);
    const std::uint64_t first = rng.next_u64();
    Rng again(42);
    EXPECT_EQ(again.next_u64(), first);
    EXPECT_NE(first, 0u);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected) {
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-2.5, 7.5);
        EXPECT_GE(u, -2.5);
        EXPECT_LT(u, 7.5);
    }
    EXPECT_THROW(rng.uniform(1.0, 0.0), InvalidArgument);
}

TEST(Rng, UniformIntCoversAllResidues) {
    Rng rng(9);
    std::array<int, 5> counts{};
    for (int i = 0; i < 5000; ++i)
        ++counts[static_cast<std::size_t>(rng.uniform_int(5))];
    for (int c : counts) EXPECT_GT(c, 800);  // ~1000 expected each
    EXPECT_THROW(rng.uniform_int(0), InvalidArgument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
    Rng rng(10);
    RunningStats rs;
    for (int i = 0; i < 40000; ++i) rs.add(rng.normal(5.0, 2.0));
    EXPECT_NEAR(rs.mean(), 5.0, 0.05);
    EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
    EXPECT_THROW(rng.normal(0.0, -1.0), InvalidArgument);
}

TEST(Rng, BernoulliFrequencyTracksP) {
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        if (rng.bernoulli(0.3)) ++hits;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, WeightedChoiceProportional) {
    Rng rng(12);
    const std::vector<double> w{1.0, 0.0, 3.0};
    std::array<int, 3> counts{};
    for (int i = 0; i < 20000; ++i)
        ++counts[rng.weighted_choice(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.3);
}

TEST(Rng, WeightedChoiceRejectsBadWeights) {
    Rng rng(13);
    EXPECT_THROW(rng.weighted_choice(std::vector<double>{0.0, 0.0}),
                 InvalidArgument);
    EXPECT_THROW(rng.weighted_choice(std::vector<double>{1.0, -0.5}),
                 InvalidArgument);
}

TEST(SplitMix64, KnownSequenceDiffers) {
    SplitMix64 sm(0);
    const auto a = sm.next();
    const auto b = sm.next();
    EXPECT_NE(a, b);
}

}  // namespace
}  // namespace pvfp

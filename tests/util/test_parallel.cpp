/// Unit tests of the deterministic parallel substrate: chunk-grid
/// determinism, pool reuse across many calls, exception propagation,
/// nesting, SerialScope, and thread-count control.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp {
namespace {

TEST(Parallel, ThreadCountControl) {
    set_thread_count(3);
    EXPECT_EQ(thread_count(), 3);
    set_thread_count(1);
    EXPECT_EQ(thread_count(), 1);
    set_thread_count(0);  // default: env or hardware concurrency
    EXPECT_GE(thread_count(), 1);
    EXPECT_THROW(set_thread_count(-1), InvalidArgument);
}

TEST(Parallel, ForCoversRangeExactlyOnce) {
    for (const int threads : {1, 4}) {
        set_thread_count(threads);
        std::vector<std::atomic<int>> hits(1000);
        parallel_for(0, 1000, 7, [&](long b, long e) {
            for (long i = b; i < e; ++i)
                hits[static_cast<std::size_t>(i)].fetch_add(1);
        });
        for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    }
    set_thread_count(0);
}

TEST(Parallel, ChunkGridIndependentOfThreadCount) {
    // Record the chunk boundaries actually used at different thread
    // counts: they must be identical (that is what makes reductions over
    // them reproducible).
    const auto boundaries_at = [](int threads) {
        set_thread_count(threads);
        std::vector<std::pair<long, long>> chunks(
            (257 + 31) / 32);  // one slot per chunk: disjoint writes
        parallel_for(0, 257, 32, [&](long b, long e) {
            chunks[static_cast<std::size_t>(b / 32)] = {b, e};
        });
        return chunks;
    };
    const auto one = boundaries_at(1);
    const auto eight = boundaries_at(8);
    set_thread_count(0);
    ASSERT_EQ(one.size(), eight.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i], eight[i]);
        EXPECT_EQ(one[i].first, static_cast<long>(i) * 32);
    }
    EXPECT_EQ(one.back().second, 257);  // short trailing chunk
}

TEST(Parallel, ReduceIsBitwiseReproducible) {
    // A sum of values spanning ~12 orders of magnitude: any change in
    // association changes the bits.  Fixed chunking + in-order combine
    // must give the same double at every thread count.
    std::vector<double> values(10000);
    double x = 1e-6;
    for (auto& v : values) {
        v = x;
        x = x * 1.003 + 1e-7;
    }
    const auto sum_at = [&](int threads) {
        set_thread_count(threads);
        return parallel_reduce(
            0L, static_cast<long>(values.size()), 97L, 0.0,
            [&](long b, long e) {
                double acc = 0.0;
                for (long i = b; i < e; ++i)
                    acc += values[static_cast<std::size_t>(i)];
                return acc;
            },
            [](double a, double b) { return a + b; });
    };
    const double s1 = sum_at(1);
    const double s2 = sum_at(2);
    const double s8 = sum_at(8);
    set_thread_count(0);
    EXPECT_EQ(s1, s2);  // bitwise: EXPECT_EQ on doubles, not NEAR
    EXPECT_EQ(s1, s8);
}

TEST(Parallel, PoolIsReusedAcrossManyCalls) {
    set_thread_count(4);
    long total = 0;
    for (int round = 0; round < 200; ++round) {
        total += parallel_reduce(
            0L, 100L, 9L, 0L,
            [](long b, long e) { return e - b; },
            [](long a, long b) { return a + b; });
    }
    set_thread_count(0);
    EXPECT_EQ(total, 200 * 100);
}

TEST(Parallel, ExceptionPropagatesAndPoolSurvives) {
    set_thread_count(4);
    EXPECT_THROW(
        parallel_for(0, 100, 1,
                     [](long b, long) {
                         if (b == 37)
                             throw InvalidArgument("boom from chunk 37");
                     }),
        InvalidArgument);
    // The pool must still work after a failed group.
    std::atomic<long> count{0};
    parallel_for(0, 50, 3, [&](long b, long e) { count += e - b; });
    EXPECT_EQ(count.load(), 50);
    set_thread_count(0);
}

TEST(Parallel, NestedParallelForDoesNotDeadlock) {
    set_thread_count(4);
    std::vector<std::atomic<int>> hits(30 * 40);
    parallel_for(0, 30, 1, [&](long ob, long oe) {
        for (long o = ob; o < oe; ++o) {
            parallel_for(0, 40, 4, [&](long ib, long ie) {
                for (long i = ib; i < ie; ++i)
                    hits[static_cast<std::size_t>(o * 40 + i)].fetch_add(1);
            });
        }
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    set_thread_count(0);
}

TEST(Parallel, SerialScopeForcesInlineExecution) {
    set_thread_count(4);
    const auto main_thread = std::this_thread::get_id();
    bool all_on_caller = true;
    {
        SerialScope serial;
        EXPECT_TRUE(in_serial_scope());
        parallel_for(0, 64, 1, [&](long, long) {
            if (std::this_thread::get_id() != main_thread)
                all_on_caller = false;
        });
    }
    EXPECT_FALSE(in_serial_scope());
    EXPECT_TRUE(all_on_caller);
    set_thread_count(0);
}

TEST(ScratchPool, ReusesReleasedObjectsAndIsolatesLiveOnes) {
    ScratchPool<std::vector<int>> pool;
    const std::vector<int>* first = nullptr;
    {
        auto lease = pool.acquire();
        lease->assign(64, 7);
        first = &*lease;
        // A second lease while the first is live must be a distinct
        // object.
        auto other = pool.acquire();
        EXPECT_NE(&*other, first);
        other->assign(8, 1);
    }
    // Both returned; the next acquire reuses one of them (capacity kept).
    auto again = pool.acquire();
    const bool reused = &*again == first || again->capacity() > 0;
    EXPECT_TRUE(reused);
}

TEST(ScratchPool, BoundsAllocationsAcrossManyChunks) {
    ScratchPool<std::vector<double>> pool;
    std::atomic<int> peak_distinct{0};
    std::mutex mutex;
    std::set<const void*> seen;
    parallel_for(0, 512, 1, [&](long, long) {
        auto lease = pool.acquire();
        lease->resize(32);
        std::lock_guard<std::mutex> lock(mutex);
        seen.insert(&*lease);
        peak_distinct = static_cast<int>(seen.size());
    });
    // Far fewer distinct scratch objects than chunks: reuse works.  The
    // bound is generous (threads + a few races), never 512.
    EXPECT_LE(peak_distinct.load(), thread_count() * 4);
    EXPECT_GE(peak_distinct.load(), 1);
}

TEST(Parallel, EmptyAndDegenerateRanges) {
    int calls = 0;
    parallel_for(5, 5, 4, [&](long, long) { ++calls; });
    parallel_for(7, 3, 4, [&](long, long) { ++calls; });
    EXPECT_EQ(calls, 0);
    EXPECT_THROW(parallel_for(0, 10, 0, [](long, long) {}),
                 InvalidArgument);
    EXPECT_EQ(parallel_reduce(
                  3L, 3L, 4L, 42L, [](long, long) { return 0L; },
                  [](long a, long b) { return a + b; }),
              42L);
}

}  // namespace
}  // namespace pvfp

/// Tests for pvfp/util/stats: exact percentiles, streaming moments and the
/// fixed-range histograms behind the suitability metric.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <vector>

#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/stats.hpp"

namespace pvfp {
namespace {

TEST(Percentile, SingleElement) {
    const std::vector<double> v{42.0};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 42.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 42.0);
}

TEST(Percentile, MedianOfTwoInterpolates) {
    const std::vector<double> v{10.0, 20.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 15.0);
}

TEST(Percentile, MatchesClosedFormOnRamp) {
    // 0..100 linear ramp: type-7 percentile of p is exactly p.
    std::vector<double> v(101);
    std::iota(v.begin(), v.end(), 0.0);
    for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0})
        EXPECT_DOUBLE_EQ(percentile(v, p), p) << "p=" << p;
}

TEST(Percentile, UnsortedInputGivesSameResult) {
    std::vector<double> v{5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0};
    std::vector<double> sorted = v;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(percentile(v, 75.0), percentile(sorted, 75.0));
}

TEST(Percentile, ExtremesAreMinAndMax) {
    Rng rng(3);
    std::vector<double> v;
    for (int i = 0; i < 1000; ++i) v.push_back(rng.uniform(-50.0, 150.0));
    EXPECT_DOUBLE_EQ(percentile(v, 0.0),
                     *std::min_element(v.begin(), v.end()));
    EXPECT_DOUBLE_EQ(percentile(v, 100.0),
                     *std::max_element(v.begin(), v.end()));
}

TEST(Percentile, RejectsEmptyAndBadP) {
    const std::vector<double> empty;
    const std::vector<double> one{1.0};
    EXPECT_THROW(percentile(empty, 50.0), InvalidArgument);
    EXPECT_THROW(percentile(one, -1.0), InvalidArgument);
    EXPECT_THROW(percentile(one, 101.0), InvalidArgument);
}

/// Property sweep: percentile is monotone in p.
class PercentileMonotone : public ::testing::TestWithParam<int> {};

TEST_P(PercentileMonotone, MonotoneInP) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    std::vector<double> v;
    for (int i = 0; i < 257; ++i) v.push_back(rng.normal(100.0, 30.0));
    double prev = percentile(v, 0.0);
    for (int p = 5; p <= 100; p += 5) {
        const double cur = percentile(v, p);
        EXPECT_GE(cur, prev) << "p=" << p;
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileMonotone,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Mean, SimpleAndThrowsOnEmpty) {
    const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    const std::vector<double> empty;
    EXPECT_THROW(mean(empty), InvalidArgument);
}

TEST(Variance, MatchesHandComputation) {
    const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    // mean 5, sum of squared dev = 32, n-1 = 7.
    EXPECT_NEAR(variance(v), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MatchesBatchOnRandomData) {
    Rng rng(17);
    std::vector<double> v;
    RunningStats rs;
    for (int i = 0; i < 5000; ++i) {
        const double x = rng.normal(10.0, 4.0);
        v.push_back(x);
        rs.add(x);
    }
    EXPECT_EQ(rs.count(), 5000);
    EXPECT_NEAR(rs.mean(), mean(v), 1e-9);
    EXPECT_NEAR(rs.variance(), variance(v), 1e-6);
    EXPECT_DOUBLE_EQ(rs.min(), *std::min_element(v.begin(), v.end()));
    EXPECT_DOUBLE_EQ(rs.max(), *std::max_element(v.begin(), v.end()));
}

TEST(RunningStats, MergeEqualsSinglePass) {
    Rng rng(23);
    RunningStats a;
    RunningStats b;
    RunningStats whole;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.uniform(-5.0, 5.0);
        (i < 400 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

/// Property sweep over randomized partitions: merging per-chunk
/// accumulators in any grouping or order matches the single-stream
/// reference.  This is the contract the parallel reductions lean on —
/// util/parallel merges per-thread RunningStats in chunk order, and the
/// chunking changes with the thread count.
class RunningStatsMergeProperty : public ::testing::TestWithParam<int> {
protected:
    static RunningStats accumulate(std::span<const double> xs) {
        RunningStats rs;
        for (double x : xs) rs.add(x);
        return rs;
    }

    static void expect_same(const RunningStats& got,
                            const RunningStats& want) {
        ASSERT_EQ(got.count(), want.count());
        EXPECT_NEAR(got.mean(), want.mean(), 1e-10);
        EXPECT_NEAR(got.variance(), want.variance(), 1e-7);
        EXPECT_DOUBLE_EQ(got.min(), want.min());
        EXPECT_DOUBLE_EQ(got.max(), want.max());
    }
};

TEST_P(RunningStatsMergeProperty, RandomPartitionMatchesSingleStream) {
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int n = 200 + static_cast<int>(rng.uniform(0.0, 2000.0));
    std::vector<double> xs;
    RunningStats whole;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal(250.0, 80.0);
        xs.push_back(x);
        whole.add(x);
    }
    // Split into a random number of contiguous chunks (some possibly
    // empty) and merge the per-chunk accumulators left to right.
    const int chunks = 1 + static_cast<int>(rng.uniform(0.0, 12.0));
    std::vector<std::size_t> cuts{0, xs.size()};
    for (int c = 1; c < chunks; ++c)
        cuts.push_back(static_cast<std::size_t>(
            rng.uniform(0.0, static_cast<double>(xs.size()))));
    std::sort(cuts.begin(), cuts.end());
    RunningStats merged;
    for (std::size_t c = 0; c + 1 < cuts.size(); ++c)
        merged.merge(accumulate(
            std::span<const double>(xs).subspan(cuts[c],
                                                cuts[c + 1] - cuts[c])));
    expect_same(merged, whole);
}

TEST_P(RunningStatsMergeProperty, CommutativeAndAssociative) {
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    std::vector<double> xs;
    RunningStats whole;
    for (int i = 0; i < 900; ++i) {
        const double x = rng.uniform(-1000.0, 1000.0);
        xs.push_back(x);
        whole.add(x);
    }
    const std::span<const double> all(xs);
    const RunningStats a = accumulate(all.subspan(0, 200));
    const RunningStats b = accumulate(all.subspan(200, 300));
    const RunningStats c = accumulate(all.subspan(500, 400));

    // (a + b) + c  ==  a + (b + c)  ==  whole stream.
    RunningStats left = a;
    left.merge(b);
    left.merge(c);
    RunningStats bc = b;
    bc.merge(c);
    RunningStats right = a;
    right.merge(bc);
    expect_same(left, whole);
    expect_same(right, whole);

    // a + b  ==  b + a.
    RunningStats ab = a;
    ab.merge(b);
    RunningStats ba = b;
    ba.merge(a);
    expect_same(ba, ab);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsMergeProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

TEST(RunningStats, MergeWithEmptySides) {
    RunningStats empty;
    RunningStats some;
    some.add(1.0);
    some.add(3.0);
    RunningStats lhs = some;
    lhs.merge(empty);
    EXPECT_EQ(lhs.count(), 2);
    EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);
    RunningStats rhs;
    rhs.merge(some);
    EXPECT_EQ(rhs.count(), 2);
    EXPECT_DOUBLE_EQ(rhs.mean(), 2.0);
}

TEST(RunningStats, ThrowsWhenEmpty) {
    RunningStats rs;
    EXPECT_THROW(rs.mean(), InvalidArgument);
    EXPECT_THROW(rs.min(), InvalidArgument);
    rs.add(1.0);
    EXPECT_THROW(rs.variance(), InvalidArgument);  // needs 2 samples
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 8), InvalidArgument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), InvalidArgument);
}

TEST(Histogram, ClampsOutOfRangeIntoEdgeBins) {
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(15.0);
    EXPECT_EQ(h.bin(0), 1u);
    EXPECT_EQ(h.bin(9), 1u);
    EXPECT_EQ(h.total(), 2u);
}

TEST(Histogram, PercentileApproximatesExactWithinBinWidth) {
    Rng rng(5);
    Histogram h(0.0, 1200.0, 256);
    std::vector<double> exact;
    for (int i = 0; i < 20000; ++i) {
        // Skewed-toward-zero distribution, like real irradiance.
        const double x = 1200.0 * std::pow(rng.uniform(), 2.0);
        h.add(x);
        exact.push_back(x);
    }
    const double bin_w = 1200.0 / 256.0;
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0}) {
        EXPECT_NEAR(h.percentile(p), percentile(exact, p), bin_w + 1e-9)
            << "p=" << p;
    }
}

TEST(Histogram, ApproxMeanCloseToExactMean) {
    Rng rng(6);
    Histogram h(-50.0, 50.0, 200);
    RunningStats rs;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.normal(3.0, 10.0);
        h.add(x);
        rs.add(x);
    }
    EXPECT_NEAR(h.approx_mean(), rs.mean(), 0.5);  // within a bin width
}

TEST(Histogram, BulkAddMatchesRepeatedAdd) {
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    for (int i = 0; i < 7; ++i) a.add(3.3);
    b.add(3.3, 7);
    EXPECT_EQ(a.total(), b.total());
    EXPECT_EQ(a.bin(a.bin_index(3.3)), b.bin(b.bin_index(3.3)));
    EXPECT_DOUBLE_EQ(a.percentile(50.0), b.percentile(50.0));
}

TEST(Histogram, EmptyPercentileThrows) {
    Histogram h(0.0, 1.0, 4);
    EXPECT_THROW(h.percentile(50.0), InvalidArgument);
    EXPECT_THROW(h.approx_mean(), InvalidArgument);
}

TEST(Histogram, PercentileMonotoneInP) {
    Rng rng(9);
    Histogram h(0.0, 100.0, 64);
    for (int i = 0; i < 3000; ++i) h.add(rng.uniform(0.0, 100.0));
    double prev = h.percentile(0.0);
    for (int p = 2; p <= 100; p += 2) {
        const double cur = h.percentile(p);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

}  // namespace
}  // namespace pvfp

/// Tests for CSV parsing/serialization, TextTable rendering, the ASCII
/// renderers and TimeGrid.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "pvfp/util/ascii_art.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/table.hpp"
#include "pvfp/util/timegrid.hpp"

namespace pvfp {
namespace {

// ---------------------------------------------------------------- CSV --

TEST(Csv, SplitSimpleLine) {
    const auto f = csv_split_line("a,b,c");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[0], "a");
    EXPECT_EQ(f[2], "c");
}

TEST(Csv, SplitQuotedFieldsWithCommasAndQuotes) {
    const auto f = csv_split_line(R"(plain,"has,comma","has ""quote""")");
    ASSERT_EQ(f.size(), 3u);
    EXPECT_EQ(f[1], "has,comma");
    EXPECT_EQ(f[2], "has \"quote\"");
}

TEST(Csv, SplitEmptyFields) {
    const auto f = csv_split_line(",,");
    ASSERT_EQ(f.size(), 3u);
    for (const auto& s : f) EXPECT_TRUE(s.empty());
}

TEST(Csv, EscapeRoundTrip) {
    const std::string nasty = "a,\"b\"\nc";
    const std::string escaped = csv_escape_field(nasty);
    const auto back = csv_split_line(escaped);
    ASSERT_EQ(back.size(), 1u);
    // Newline inside quoted fields is not supported by the line-based
    // reader; escaping still protects comma and quotes.
    EXPECT_EQ(csv_escape_field("plain"), "plain");
}

TEST(Csv, TableRoundTripThroughStream) {
    CsvTable t({"x", "label"});
    t.add_row({"1.5", "hello"});
    t.add_row({"-2", "with,comma"});
    std::ostringstream out;
    t.write(out);
    std::istringstream in(out.str());
    const CsvTable back = CsvTable::read(in);
    ASSERT_EQ(back.row_count(), 2u);
    EXPECT_EQ(back.cell(1, 1), "with,comma");
    EXPECT_DOUBLE_EQ(back.cell_as_double(0, "x"), 1.5);
    EXPECT_DOUBLE_EQ(back.cell_as_double(1, 0), -2.0);
}

TEST(Csv, CommentsAndBlankLinesIgnored) {
    std::istringstream in("# a comment\n\nx,y\n# another\n1,2\n");
    const CsvTable t = CsvTable::read(in);
    EXPECT_EQ(t.row_count(), 1u);
    EXPECT_EQ(t.column("y"), 1u);
}

TEST(Csv, ErrorsAreReported) {
    std::istringstream ragged("a,b\n1\n");
    EXPECT_THROW(CsvTable::read(ragged), IoError);
    std::istringstream empty("");
    EXPECT_THROW(CsvTable::read(empty), IoError);

    CsvTable t({"a"});
    EXPECT_THROW(t.add_row({"1", "2"}), InvalidArgument);
    t.add_row({"not-a-number"});
    EXPECT_THROW(t.cell_as_double(0, 0), IoError);
    EXPECT_THROW(t.column("missing"), InvalidArgument);
    EXPECT_FALSE(t.has_column("missing"));
    EXPECT_TRUE(t.has_column("a"));
}

TEST(Csv, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/pvfp_csv_test.csv";
    CsvTable t({"v"});
    t.add_row({"3.25"});
    t.write_file(path);
    const CsvTable back = CsvTable::read_file(path);
    EXPECT_DOUBLE_EQ(back.cell_as_double(0, "v"), 3.25);
    std::remove(path.c_str());
    EXPECT_THROW(CsvTable::read_file("/nonexistent/nope.csv"), IoError);
}

// ---------------------------------------------------------- TextTable --

TEST(TextTable, RendersAlignedCells) {
    TextTable t({"name", "val"});
    t.set_align(0, Align::Left);
    t.add_row({"a", "1"});
    t.add_row({"longer", "22"});
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| a      |"), std::string::npos);
    EXPECT_NE(s.find("|  22 |"), std::string::npos);
    EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(TextTable, SeparatorAndErrors) {
    TextTable t({"a"});
    t.add_row({"1"});
    t.add_separator();
    t.add_row({"2"});
    EXPECT_EQ(t.row_count(), 3u);  // separator counts as a row entry
    EXPECT_THROW(t.add_row({"1", "2"}), InvalidArgument);
    EXPECT_THROW(t.set_align(5, Align::Left), InvalidArgument);
    EXPECT_THROW(TextTable({}), InvalidArgument);
}

TEST(TextTable, NumberFormatting) {
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(-1.0, 0), "-1");
    EXPECT_EQ(TextTable::pct(0.1937, 2), "+19.37");
    EXPECT_EQ(TextTable::pct(-0.05, 1), "-5.0");
}

// ------------------------------------------------------------ ASCII art --

TEST(AsciiArt, HeatmapShapeAndRamp) {
    Grid2D<double> g(10, 4);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 10; ++x) g(x, y) = x;  // left-to-right ramp
    const std::string s = render_heatmap(g);
    // 10 wide fits without downsampling; y downsampled by 2 -> 2 rows.
    const auto newline = s.find('\n');
    EXPECT_EQ(newline, 10u);
    // Low values on the left must map to a sparser glyph than the right.
    EXPECT_EQ(s[0], ' ');
    EXPECT_EQ(s[9], '@');
}

TEST(AsciiArt, HeatmapConstantGridDoesNotDivideByZero) {
    Grid2D<double> g(4, 4, 3.0);
    EXPECT_NO_THROW(render_heatmap(g));
}

TEST(AsciiArt, HeatmapMaskBlanksCells) {
    Grid2D<double> g(4, 2, 1.0);
    Grid2D<unsigned char> mask(4, 2, 1);
    for (int y = 0; y < 2; ++y) mask(0, y) = 0;
    HeatmapOptions opt;
    opt.mask = &mask;
    const std::string s = render_heatmap(g, opt);
    EXPECT_EQ(s[0], ' ');
}

TEST(AsciiArt, FloorplanDrawsModulesAndBackground) {
    Grid2D<unsigned char> valid(12, 6, 1);
    valid(11, 0) = 0;
    std::vector<ModuleBox> boxes{{0, 0, 4, 2, 0}, {4, 2, 4, 2, 1}};
    const std::string s = render_floorplan(valid, boxes, 80);
    EXPECT_NE(s.find('A'), std::string::npos);
    EXPECT_NE(s.find('B'), std::string::npos);
    EXPECT_NE(s.find('.'), std::string::npos);
}

TEST(AsciiArt, FloorplanOutOfBoundsModuleThrows) {
    Grid2D<unsigned char> valid(4, 4, 1);
    std::vector<ModuleBox> boxes{{2, 2, 4, 4, 0}};
    EXPECT_THROW(render_floorplan(valid, boxes), InvalidArgument);
}

TEST(AsciiArt, LegendMentionsUnitAndLevels) {
    const std::string s = heatmap_legend(0.0, 1000.0, "W/m^2");
    EXPECT_NE(s.find("W/m^2"), std::string::npos);
    EXPECT_NE(s.find('@'), std::string::npos);
}

// ------------------------------------------------------------ TimeGrid --

TEST(TimeGrid, YearAt15MinutesHas35040Steps) {
    const TimeGrid g(15, 1, 365);
    EXPECT_EQ(g.total_steps(), 35040);
    EXPECT_EQ(g.steps_per_day(), 96);
    EXPECT_DOUBLE_EQ(g.step_hours(), 0.25);
}

TEST(TimeGrid, MidIntervalSampling) {
    const TimeGrid g(60, 1, 2);
    EXPECT_DOUBLE_EQ(g.hour_of_day(0), 0.5);
    EXPECT_DOUBLE_EQ(g.hour_of_day(23), 23.5);
    EXPECT_EQ(g.day_of_year(0), 1);
    EXPECT_EQ(g.day_of_year(24), 2);
}

TEST(TimeGrid, StartDayOffsetAndWrap) {
    const TimeGrid g(60, 364, 3);
    EXPECT_EQ(g.day_of_year(0), 364);
    EXPECT_EQ(g.day_of_year(24), 365);
    EXPECT_EQ(g.day_of_year(48), 1);  // wraps into the next year
}

TEST(TimeGrid, RejectsBadParameters) {
    EXPECT_THROW(TimeGrid(7, 1, 365), InvalidArgument);   // 1440 % 7 != 0
    EXPECT_THROW(TimeGrid(15, 0, 365), InvalidArgument);
    EXPECT_THROW(TimeGrid(15, 1, 0), InvalidArgument);
    const TimeGrid g(15, 1, 1);
    EXPECT_THROW(g.day_of_year(-1), InvalidArgument);
    EXPECT_THROW(g.day_of_year(96), InvalidArgument);
    EXPECT_THROW(g.hour_of_day(96), InvalidArgument);
}

}  // namespace
}  // namespace pvfp

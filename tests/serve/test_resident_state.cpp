/// \file test_resident_state.cpp
/// The daemon's resident hot-state cache: hit/miss identity, byte
/// accounting and LRU eviction under a memory budget, content-hash
/// invalidation after an index edit, error paths, and a mixed
/// prepare/invalidate hammer that the TSan job runs for data races.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "pvfp/gis/fixture.hpp"
#include "pvfp/serve/resident_state.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("pvfp_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/// The shared 9-roof fixture city plus the fast serve configuration
/// every suite uses (mirrors the city-runner test options).
struct ServeCity {
    std::string dir;
    gis::TileIndex tiles;
    gis::RoofRegistry registry;

    explicit ServeCity(const std::string& name)
        : dir([&] {
              const std::string d = temp_dir(name);
              gis::CityFixtureOptions options;
              options.roofs = 9;
              options.tile_cells = 96;
              gis::generate_city_fixture(d, options);
              return d;
          }()),
          tiles(gis::TileIndex::scan(dir)),
          registry(gis::RoofRegistry::load(dir + "/index.csv")) {}

    ServeConfig fast_config() const {
        ServeConfig config;
        config.config.grid = TimeGrid(60, 100, 8);
        config.config.horizon.azimuth_sectors = 16;
        config.config.suitability.step_stride = 2;
        config.eval.step_stride = 2;
        config.topologies = {{4, 2}};
        config.build.context_margin_m = 4.0;
        return config;
    }

    ResidentState make_state(ServeConfig config) const {
        return ResidentState(tiles, registry, std::move(config));
    }

    std::string roof(long i) const { return registry.record(i).id; }
};

TEST(ResidentState, SecondPrepareIsAHitOnTheSameObject) {
    const ServeCity city("rs_hit");
    ResidentState state = city.make_state(city.fast_config());
    const auto first = state.prepare(city.roof(0));
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(first->id, city.roof(0));
    EXPECT_GT(first->resident_bytes, 0u);
    EXPECT_EQ(first->resident_bytes,
              prepared_scenario_bytes(first->prepared));

    const auto second = state.prepare(city.roof(0));
    EXPECT_EQ(second, first);  // the very same resident object
    const ResidentStats stats = state.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.sky_artifacts, 1u);
    // Accounting covers the roof and its shared sky artifact.
    EXPECT_GT(stats.resident_bytes, first->resident_bytes);
}

TEST(ResidentState, UnknownRoofThrowsAndCachesNothing) {
    const ServeCity city("rs_unknown");
    ResidentState state = city.make_state(city.fast_config());
    EXPECT_THROW(state.prepare("no_such_roof"), InvalidArgument);
    EXPECT_EQ(state.stats().entries, 0u);
}

TEST(ResidentState, EvictsPastTheBudgetAndKeepsTheNewestEntry) {
    const ServeCity city("rs_evict");
    ServeConfig config = city.fast_config();
    // A budget one roof already exceeds: after every build exactly the
    // newest entry may stay (the budget bounds additional residency).
    config.memory_budget_bytes = 1;
    ResidentState state = city.make_state(std::move(config));

    std::size_t roof_bytes = 0;
    for (long i = 0; i < 4; ++i) {
        const auto roof = state.prepare(city.roof(i));
        roof_bytes = roof->resident_bytes;
        const ResidentStats stats = state.stats();
        EXPECT_EQ(stats.entries, 1u) << "after roof " << i;
        // Accounting tracks the survivor's actual bytes (plus its sky).
        EXPECT_GE(stats.resident_bytes, roof_bytes);
        EXPECT_EQ(stats.evictions, static_cast<std::size_t>(i));
    }
    // An evicted roof is a miss again — and rebuilds fine.
    const auto again = state.prepare(city.roof(0));
    EXPECT_EQ(again->id, city.roof(0));
    EXPECT_EQ(state.stats().misses, 5u);
    EXPECT_EQ(state.stats().hits, 0u);
}

TEST(ResidentState, BudgetAccountingSumsResidentEntries) {
    const ServeCity city("rs_bytes");
    ResidentState state = city.make_state(city.fast_config());  // 512 MB
    std::size_t expected = 0;
    for (long i = 0; i < 3; ++i)
        expected += state.prepare(city.roof(i))->resident_bytes;
    const ResidentStats stats = state.stats();
    EXPECT_EQ(stats.entries, 3u);
    EXPECT_EQ(stats.evictions, 0u);
    // resident_bytes = sum of entries + the (single-site) sky artifact.
    EXPECT_GT(stats.resident_bytes, expected);
    EXPECT_EQ(stats.sky_artifacts, 1u);
}

TEST(ResidentState, IndexEditInvalidatesExactlyTheChangedRoof) {
    const ServeCity city("rs_invalidate");
    ResidentState state = city.make_state(city.fast_config());
    const auto before_a = state.prepare(city.roof(0));
    const auto before_b = state.prepare(city.roof(1));

    // Edit roof 0's footprint in the index file (shrink the bbox by one
    // cell) and reload — the daemon's `reload` op.
    const std::string index_path = city.dir + "/index.csv";
    std::ifstream is(index_path);
    std::ostringstream edited;
    std::string line;
    std::getline(is, line);  // header
    edited << line << "\n";
    bool first_row = true;
    while (std::getline(is, line)) {
        if (first_row) {
            std::istringstream row(line);
            std::string id, min_x, min_y, rest;
            std::getline(row, id, ',');
            std::getline(row, min_x, ',');
            std::getline(row, min_y, ',');
            std::getline(row, rest);
            char shifted[32];
            std::snprintf(shifted, sizeof shifted, "%.3f",
                          std::stod(min_x) + 0.2);
            edited << id << ',' << shifted << ',' << min_y << ',' << rest
                   << "\n";
            first_row = false;
        } else {
            edited << line << "\n";
        }
    }
    is.close();
    std::ofstream(index_path, std::ios::trunc) << edited.str();

    state.update_registry(gis::RoofRegistry::load(index_path));

    // Roof 0: content hash changed -> stale entry dropped, rebuilt.
    const auto after_a = state.prepare(city.roof(0));
    EXPECT_NE(after_a, before_a);
    EXPECT_NE(after_a->content_hash, before_a->content_hash);
    EXPECT_NE(after_a->prepared.area.valid_count,
              before_a->prepared.area.valid_count);
    // Roof 1: untouched -> still served from cache.
    const auto after_b = state.prepare(city.roof(1));
    EXPECT_EQ(after_b, before_b);
    const ResidentStats stats = state.stats();
    EXPECT_EQ(stats.invalidations, 1u);
    EXPECT_EQ(stats.misses, 3u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(ResidentState, ExplicitInvalidateDropsOneEntry) {
    const ServeCity city("rs_drop");
    ResidentState state = city.make_state(city.fast_config());
    const auto before = state.prepare(city.roof(2));
    state.invalidate(city.roof(2));
    state.invalidate("no_such_roof");  // no-op
    EXPECT_EQ(state.stats().entries, 0u);
    const auto after = state.prepare(city.roof(2));
    EXPECT_NE(after, before);
    // Identical inputs -> identical content hash (the rebuild is not a
    // semantic change, just a fresh object).
    EXPECT_EQ(after->content_hash, before->content_hash);
}

TEST(ResidentState, RecordHashTracksContentNotPosition) {
    const ServeCity city("rs_hash");
    const gis::ScenarioBuildOptions build;
    const gis::RoofRecord& a = city.registry.record(0);
    gis::RoofRecord b = a;
    EXPECT_EQ(roof_record_hash(a, build), roof_record_hash(b, build));
    b.bbox.x1 += 0.01;
    EXPECT_NE(roof_record_hash(a, build), roof_record_hash(b, build));
    b = a;
    b.polygon.push_back({1.0, 2.0});
    EXPECT_NE(roof_record_hash(a, build), roof_record_hash(b, build));
    gis::ScenarioBuildOptions wider = build;
    wider.context_margin_m += 1.0;
    EXPECT_NE(roof_record_hash(a, build), roof_record_hash(a, wider));
}

TEST(ResidentState, ConcurrentPreparesShareOneBuild) {
    const ServeCity city("rs_join");
    ResidentState state = city.make_state(city.fast_config());
    constexpr int kThreads = 4;
    std::vector<std::shared_ptr<const PreparedRoof>> got(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { got[t] = state.prepare(city.roof(0)); });
    for (std::thread& t : threads) t.join();
    for (int t = 1; t < kThreads; ++t) EXPECT_EQ(got[t], got[0]);
    EXPECT_EQ(state.stats().misses, 1u);  // one build, three joins
    EXPECT_EQ(state.stats().hits, 3u);
}

TEST(ResidentState, HammerMixedPrepareInvalidateUnderContention) {
    // The TSan target: every path of the cache (hit, miss, join,
    // invalidate, evict) exercised from many threads at once.  The
    // budget is sized so eviction fires throughout.
    const ServeCity city("rs_hammer");
    ServeConfig config = city.fast_config();
    config.memory_budget_bytes = 6u << 20;  // a few roofs' worth
    ResidentState state = city.make_state(std::move(config));

    constexpr int kThreads = 8;
    constexpr int kIterations = 12;
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIterations; ++i) {
                const long r = (t * 7 + i * 3) % city.registry.size();
                try {
                    if (t == 0 && i % 4 == 3) {
                        state.invalidate(city.roof(r));
                        continue;
                    }
                    const auto roof = state.prepare(city.roof(r));
                    if (roof->id != city.roof(r) ||
                        roof->prepared.area.valid_count <= 0)
                        failures.fetch_add(1);
                } catch (const std::exception&) {
                    failures.fetch_add(1);
                }
            }
        });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);

    // Quiescent accounting is exact: rebuild the expected byte total
    // from the surviving entries.
    const ResidentStats stats = state.stats();
    EXPECT_GE(stats.misses, 1u);
    std::size_t entry_bytes = 0;
    std::set<std::string> seen;
    for (long r = 0; r < city.registry.size(); ++r) {
        const auto roof = state.prepare(city.roof(r));
        entry_bytes = roof->resident_bytes;
        seen.insert(roof->id);
    }
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(city.registry.size()));
    EXPECT_GT(entry_bytes, 0u);
}

}  // namespace
}  // namespace pvfp::serve

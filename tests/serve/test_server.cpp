/// \file test_server.cpp
/// The serving daemon end to end through pipe-mode sessions: protocol
/// parse/reject paths, rank payloads byte-identical to run_city
/// records, live-vs-replay byte identity (including a torn log tail),
/// plan/status/quit behaviour, and state persisting across sessions.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pvfp/gis/city_runner.hpp"
#include "pvfp/gis/fixture.hpp"
#include "pvfp/gis/json.hpp"
#include "pvfp/grid/sequential_place.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/serve/protocol.hpp"
#include "pvfp/serve/server.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::serve {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& name) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("pvfp_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

std::string read_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

/// Fixture city + a server configured exactly like the city-runner
/// tests' fast options, so rank payloads can be compared to run_city
/// records byte for byte.
struct ServerCity {
    std::string dir;
    gis::TileIndex tiles;
    gis::RoofRegistry registry;

    explicit ServerCity(const std::string& name)
        : dir([&] {
              const std::string d = temp_dir(name);
              gis::CityFixtureOptions options;
              options.roofs = 9;
              options.tile_cells = 96;
              gis::generate_city_fixture(d, options);
              return d;
          }()),
          tiles(gis::TileIndex::scan(dir)),
          registry(gis::RoofRegistry::load(dir + "/index.csv")) {}

    ServerOptions fast_options() const {
        ServerOptions options;
        options.state.config.grid = TimeGrid(60, 100, 8);
        options.state.config.horizon.azimuth_sectors = 16;
        options.state.config.suitability.step_stride = 2;
        options.state.eval.step_stride = 2;
        options.state.topologies = {{4, 2}};
        options.state.build.context_margin_m = 4.0;
        options.index_path = dir + "/index.csv";
        return options;
    }

    gis::CityRunOptions matching_city_options(
        const std::string& jsonl) const {
        gis::CityRunOptions options;
        options.config.grid = TimeGrid(60, 100, 8);
        options.config.horizon.azimuth_sectors = 16;
        options.config.suitability.step_stride = 2;
        options.eval.step_stride = 2;
        options.topologies = {{4, 2}};
        options.build.context_margin_m = 4.0;
        options.shard_size = 4;
        options.jsonl_path = jsonl;
        return options;
    }

    Server make_server(ServerOptions options) const {
        return Server(tiles, registry, std::move(options));
    }

    std::string roof(long i) const { return registry.record(i).id; }
};

/// Run one pipe-mode session over \p request_lines; returns the
/// response lines.
std::vector<std::string> session(Server& server,
                                 const std::vector<std::string>& requests,
                                 bool* quit = nullptr) {
    std::string in_bytes;
    for (const std::string& r : requests) in_bytes += r + "\n";
    std::istringstream in(in_bytes);
    std::ostringstream out;
    const bool saw_quit = server.serve(in, out);
    if (quit) *quit = saw_quit;
    std::vector<std::string> lines;
    std::istringstream split(out.str());
    std::string line;
    while (std::getline(split, line)) lines.push_back(line);
    return lines;
}

TEST(Protocol, ParsesAndRejectsRequests) {
    const Request rank = parse_request("{\"op\":\"rank\",\"id\":\"r1\"}");
    EXPECT_EQ(rank.op, "rank");
    EXPECT_EQ(rank.id, "r1");

    const Request plan = parse_request(
        "{\"op\":\"plan\",\"id\":\"r2\",\"series\":6,\"strings\":2,"
        "\"orientation\":\"portrait\"}");
    EXPECT_EQ(plan.series, 6);
    EXPECT_EQ(plan.strings, 2);
    EXPECT_TRUE(plan.portrait);
    EXPECT_FALSE(
        parse_request("{\"op\":\"plan\",\"id\":\"r\",\"series\":1,"
                      "\"strings\":1}")
            .portrait);

    const Request grid = parse_request(
        "{\"op\":\"grid_rank\",\"feeder\":\"F00\"}");
    EXPECT_EQ(grid.op, "grid_rank");
    EXPECT_EQ(grid.feeder, "F00");
    EXPECT_THROW(parse_request("{\"op\":\"grid_rank\"}"), Error);
    EXPECT_THROW(parse_request("{\"op\":\"grid_rank\",\"feeder\":\"\"}"),
                 IoError);

    EXPECT_THROW(parse_request("not json"), Error);
    EXPECT_THROW(parse_request("[1,2]"), IoError);
    EXPECT_THROW(parse_request("{\"op\":\"frobnicate\"}"), IoError);
    EXPECT_THROW(parse_request("{\"op\":\"rank\"}"), Error);  // no id
    EXPECT_THROW(parse_request("{\"op\":\"plan\",\"id\":\"r\","
                               "\"series\":0,\"strings\":2}"),
                 IoError);
    EXPECT_THROW(parse_request("{\"op\":\"plan\",\"id\":\"r\","
                               "\"series\":1,\"strings\":1,"
                               "\"orientation\":\"diagonal\"}"),
                 IoError);
}

TEST(Protocol, RequestLogRoundTripsAndDetectsGaps) {
    const std::string raw = "{\"op\":\"rank\",\"id\":\"a \\\"b\\\"\"}";
    const std::string logged = request_log_line(7, raw);
    EXPECT_EQ(request_from_log_line(7, logged), raw);
    EXPECT_THROW(request_from_log_line(8, logged), IoError);  // gap
    EXPECT_THROW(request_from_log_line(0, "{\"seq\":0,\"requ"), IoError);
}

TEST(Server, RankPayloadMatchesTheRunCityRecord) {
    const ServerCity city("srv_rank");
    gis::CityRunOptions batch =
        city.matching_city_options(city.dir + "/batch.jsonl");
    (void)gis::run_city(city.tiles, city.registry, batch);
    std::vector<std::string> records;
    {
        std::ifstream is(batch.jsonl_path);
        std::string line;
        while (std::getline(is, line)) records.push_back(line);
    }
    ASSERT_EQ(records.size(), 9u);

    Server server = city.make_server(city.fast_options());
    const auto responses = session(
        server, {"{\"op\":\"rank\",\"id\":\"" + city.roof(0) + "\"}",
                 "{\"op\":\"rank\",\"id\":\"" + city.roof(5) + "\"}"});
    ASSERT_EQ(responses.size(), 2u);
    // The serving payload is the batch record with the envelope spliced
    // in front — byte-identical tail, same key order and precision.
    EXPECT_EQ(responses[0],
              "{\"seq\":0,\"op\":\"rank\"," + records[0].substr(1));
    EXPECT_EQ(responses[1],
              "{\"seq\":1,\"op\":\"rank\"," + records[5].substr(1));
}

TEST(Server, LiveSessionAndReplayAreByteIdentical) {
    const ServerCity city("srv_replay");
    ServerOptions options = city.fast_options();
    options.request_log_path = city.dir + "/requests.jsonl";
    Server live = city.make_server(options);

    const std::vector<std::string> requests = {
        "{\"op\":\"status\"}",
        "{\"op\":\"rank\",\"id\":\"" + city.roof(1) + "\"}",
        "{\"op\":\"plan\",\"id\":\"" + city.roof(1) +
            "\",\"series\":4,\"strings\":2}",
        "{\"op\":\"rank\",\"id\":\"" + city.roof(1) + "\"}",  // warm hit
        "{\"op\":\"rank\",\"id\":\"absent\"}",                // error
        "this is not json",                                   // parse error
        "{\"op\":\"quit\"}",
    };
    bool quit = false;
    const auto live_lines = session(live, requests, &quit);
    EXPECT_TRUE(quit);
    ASSERT_EQ(live_lines.size(), requests.size());

    // Replay on a *fresh* server: identical bytes, cold caches and all.
    Server replayer = city.make_server(city.fast_options());
    std::ostringstream replay_out;
    EXPECT_EQ(replayer.replay(options.request_log_path, replay_out),
              static_cast<long>(requests.size()));
    std::string live_bytes;
    for (const std::string& line : live_lines) live_bytes += line + "\n";
    EXPECT_EQ(replay_out.str(), live_bytes);

    // A torn tail (killed mid-append) replays the intact prefix.
    const std::string log_bytes = read_file(options.request_log_path);
    const std::string::size_type last =
        log_bytes.rfind('\n', log_bytes.size() - 2);
    ASSERT_NE(last, std::string::npos);
    const std::string torn_path = city.dir + "/torn.jsonl";
    std::ofstream(torn_path, std::ios::binary)
        << log_bytes.substr(0, last + 1 + (log_bytes.size() - last) / 2);
    Server torn_replayer = city.make_server(city.fast_options());
    std::ostringstream torn_out;
    EXPECT_EQ(torn_replayer.replay(torn_path, torn_out),
              static_cast<long>(requests.size()) - 1);
    EXPECT_EQ(torn_out.str(),
              live_bytes.substr(0, live_bytes.rfind(
                                       '\n', live_bytes.size() - 2) +
                                       1));
}

TEST(Server, GridRankMatchesBatchPlanAndReplaysByteIdentical) {
    const ServerCity city("srv_grid");

    // The batch route: run_city results fed to sequential_place with
    // the same feeder filter — grid_rank must embed the exact same
    // placement bytes (the serving path round-trips every yield
    // through the batch codec precisely so these agree).
    gis::CityRunOptions batch =
        city.matching_city_options(city.dir + "/batch.jsonl");
    const gis::CityRunSummary summary =
        gis::run_city(city.tiles, city.registry, batch);
    const grid::FeederModel model =
        grid::FeederModel::load(city.dir + "/feeder.json");
    grid::GridPlaceOptions grid_options;
    grid_options.feeder_filter = "F00";
    const grid::GridPlanResult expected =
        grid::sequential_place(model, summary.results, grid_options);
    ASSERT_GT(expected.attached, 0);
    std::string expected_placements;
    for (std::size_t p = 0; p < expected.placements.size(); ++p) {
        if (p) expected_placements += ',';
        expected_placements +=
            grid::placement_to_jsonl(expected.placements[p]);
    }

    ServerOptions options = city.fast_options();
    options.feeder_path = city.dir + "/feeder.json";
    options.request_log_path = city.dir + "/grid_requests.jsonl";
    Server live = city.make_server(options);
    const std::vector<std::string> requests = {
        "{\"op\":\"grid_rank\",\"feeder\":\"F00\"}",
        "{\"op\":\"grid_rank\",\"feeder\":\"F00\"}",  // warm caches
        "{\"op\":\"grid_rank\",\"feeder\":\"no_such_feeder\"}",
        "{\"op\":\"quit\"}",
    };
    const auto live_lines = session(live, requests);
    ASSERT_EQ(live_lines.size(), requests.size());

    EXPECT_EQ(live_lines[0].rfind("{\"seq\":0,\"op\":\"grid_rank\","
                                  "\"feeder\":\"F00\",\"status\":\"ok\"",
                                  0),
              0u)
        << live_lines[0];
    EXPECT_NE(live_lines[0].find("\"placements\":[" + expected_placements +
                                 "]"),
              std::string::npos)
        << live_lines[0];
    EXPECT_NE(live_lines[0].find(
                  "\"attached\":" + std::to_string(expected.attached)),
              std::string::npos);
    // Warm and cold responses differ only in seq — pure function of
    // the request, never of cache state.
    EXPECT_EQ(live_lines[1].substr(9), live_lines[0].substr(9));
    EXPECT_NE(live_lines[2].find("\"status\":\"error\""),
              std::string::npos);
    EXPECT_NE(live_lines[2].find("unknown feeder"), std::string::npos);

    // Replay on a fresh server: byte-identical, grid_rank included.
    // (No log path — reopening the same log would truncate it.)
    ServerOptions replay_options = options;
    replay_options.request_log_path.clear();
    Server replayer = city.make_server(replay_options);
    std::ostringstream replay_out;
    EXPECT_EQ(replayer.replay(options.request_log_path, replay_out),
              static_cast<long>(requests.size()));
    std::string live_bytes;
    for (const std::string& line : live_lines) live_bytes += line + "\n";
    EXPECT_EQ(replay_out.str(), live_bytes);

    // Without --feeder-index the op is a deterministic error.
    Server bare = city.make_server(city.fast_options());
    const auto rejected =
        session(bare, {"{\"op\":\"grid_rank\",\"feeder\":\"F00\"}"});
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_NE(rejected[0].find("without --feeder-index"),
              std::string::npos);
}

TEST(Server, PlanPlacesTheRequestedTopology) {
    const ServerCity city("srv_plan");
    Server server = city.make_server(city.fast_options());
    const auto responses = session(
        server,
        {"{\"op\":\"plan\",\"id\":\"" + city.roof(0) +
             "\",\"series\":3,\"strings\":2}",
         "{\"op\":\"plan\",\"id\":\"" + city.roof(0) +
             "\",\"series\":3,\"strings\":2,\"orientation\":\"portrait\"}",
         "{\"op\":\"plan\",\"id\":\"" + city.roof(0) +
             "\",\"series\":80,\"strings\":40}"});  // infeasible
    ASSERT_EQ(responses.size(), 3u);
    const gis::JsonValue ok = gis::JsonValue::parse(responses[0]);
    EXPECT_EQ(ok.at("status").as_string(), "ok");
    EXPECT_EQ(ok.at("orientation").as_string(), "landscape");
    EXPECT_EQ(ok.at("modules").as_array().size(), 6u);
    EXPECT_GT(ok.at("energy_kwh").as_number(), 0.0);

    const gis::JsonValue portrait = gis::JsonValue::parse(responses[1]);
    EXPECT_EQ(portrait.at("orientation").as_string(), "portrait");
    EXPECT_EQ(portrait.at("modules").as_array().size(), 6u);

    const gis::JsonValue infeasible = gis::JsonValue::parse(responses[2]);
    EXPECT_EQ(infeasible.at("status").as_string(), "error");
    EXPECT_EQ(infeasible.at("seq").as_number(), 2.0);
}

TEST(Server, StatusIsDeterministicAndSessionsShareState) {
    const ServerCity city("srv_status");
    Server server = city.make_server(city.fast_options());
    bool quit = true;
    const auto first = session(server, {"{\"op\":\"status\"}"}, &quit);
    EXPECT_FALSE(quit);  // EOF, not quit
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0],
              "{\"seq\":0,\"op\":\"status\",\"status\":\"ok\","
              "\"protocol\":1,\"roofs\":9,\"tiles\":12,"
              "\"cell_size\":0.2000,\"topologies\":[[4,2]],"
              "\"memory_budget_mb\":512,\"resident_bytes\":{"
              "\"tiles\":0,\"sky\":0,\"prepared\":0,\"horizon\":0}}");

    // Sequence numbers and resident state persist across sessions: the
    // same roof prepared in session one is a hit in session two.
    (void)session(server,
                  {"{\"op\":\"rank\",\"id\":\"" + city.roof(0) + "\"}"});
    const auto third = session(
        server, {"", "{\"op\":\"rank\",\"id\":\"" + city.roof(0) + "\"}"});
    ASSERT_EQ(third.size(), 1u);  // the blank line is skipped, no seq
    EXPECT_EQ(third[0].rfind("{\"seq\":2,", 0), 0u) << third[0];
    EXPECT_EQ(server.state().stats().hits, 1u);
    EXPECT_EQ(server.requests_accepted(), 3);
}

/// The per-cache byte accounting contract: resident_bytes is the last
/// status field, its sub-keys come in the pinned order
/// tiles/sky/prepared/horizon, and a warm server reports the caches it
/// actually holds.
TEST(Server, StatusResidentBytesFieldOrderOnWarmState) {
    const ServerCity city("srv_status_bytes");
    Server server = city.make_server(city.fast_options());
    const auto responses = session(
        server, {"{\"op\":\"rank\",\"id\":\"" + city.roof(0) + "\"}",
                 "{\"op\":\"status\"}"});
    ASSERT_EQ(responses.size(), 2u);

    const gis::JsonValue status = gis::JsonValue::parse(responses[1]);
    const auto& top = status.as_object();
    ASSERT_FALSE(top.empty());
    EXPECT_EQ(top.back().first, "resident_bytes");
    const auto& bytes = status.at("resident_bytes").as_object();
    ASSERT_EQ(bytes.size(), 4u);
    EXPECT_EQ(bytes[0].first, "tiles");
    EXPECT_EQ(bytes[1].first, "sky");
    EXPECT_EQ(bytes[2].first, "prepared");
    EXPECT_EQ(bytes[3].first, "horizon");

    // After one rank the tile cache and the prepared-roof cache hold
    // real bytes; no shared-horizon cache was configured.
    EXPECT_GT(bytes[0].second.as_number(), 0.0);
    EXPECT_GT(bytes[2].second.as_number(), 0.0);
    EXPECT_EQ(bytes[3].second.as_number(), 0.0);

    const ResidentStats stats = server.state().stats();
    EXPECT_EQ(bytes[0].second.as_number(),
              static_cast<double>(stats.tile_cache_bytes));
    EXPECT_EQ(bytes[1].second.as_number(),
              static_cast<double>(stats.sky_bytes));
    EXPECT_EQ(bytes[2].second.as_number(),
              static_cast<double>(stats.prepared_bytes));
}

#ifndef PVFP_OBS_DISABLED
/// The metrics op surfaces the registry (request counters, latency
/// histograms, resident-cache deltas) as one JSON document.  It is the
/// single op excluded from the replay byte contract, so the test pins
/// shape, not bytes.
TEST(Server, MetricsOpReportsRequestCountersAndCacheState) {
    const ServerCity city("srv_metrics");
    const bool was_enabled = obs::enabled();
    obs::registry().reset_for_tests();
    obs::set_enabled(true);

    Server server = city.make_server(city.fast_options());
    const auto responses = session(
        server, {"{\"op\":\"rank\",\"id\":\"" + city.roof(0) + "\"}",
                 "{\"op\":\"rank\",\"id\":\"" + city.roof(1) + "\"}",
                 "{\"op\":\"metrics\"}"});
    obs::set_enabled(was_enabled);
    ASSERT_EQ(responses.size(), 3u);

    const gis::JsonValue doc = gis::JsonValue::parse(responses[2]);
    EXPECT_EQ(doc.at("op").as_string(), "metrics");
    EXPECT_EQ(doc.at("status").as_string(), "ok");
    EXPECT_GE(doc.at("dropped_spans").as_number(), 0.0);

    const gis::JsonValue& metrics = doc.at("metrics");
    const auto& counters = metrics.at("counters").as_object();
    const auto find_counter = [&](const std::string& name) -> double {
        for (const auto& [n, v] : counters)
            if (n == name) return v.as_number();
        ADD_FAILURE() << "counter '" << name << "' missing";
        return -1.0;
    };
    EXPECT_EQ(find_counter("serve.requests.rank"), 2.0);
    // The metrics request itself is counted when its response renders.
    EXPECT_EQ(find_counter("serve.requests.metrics"), 1.0);
    // Two cold ranks: two resident-cache misses, zero hits so far.
    EXPECT_EQ(find_counter("serve.resident.misses"), 2.0);

    // Latency histograms exist per op with the shared bounds layout.
    const gis::JsonValue* hist =
        metrics.at("histograms").find("serve.latency_ns.rank");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->at("count").as_number(), 2.0);
    EXPECT_EQ(hist->at("bounds").as_array().size(),
              obs::latency_bounds_ns().size());

    // Byte gauges mirror the warm resident state.
    const ResidentStats stats = server.state().stats();
    const gis::JsonValue* prepared =
        metrics.at("gauges").find("serve.bytes.prepared");
    ASSERT_NE(prepared, nullptr);
    EXPECT_EQ(prepared->as_number(),
              static_cast<double>(stats.prepared_bytes));

    obs::registry().reset_for_tests();
}
#endif  // PVFP_OBS_DISABLED

TEST(Server, ReloadPicksUpAnEditedIndex) {
    const ServerCity city("srv_reload");
    Server server = city.make_server(city.fast_options());
    // Append a tenth roof (a copy of roof 0's footprint, new id).
    {
        std::ifstream is(city.dir + "/index.csv");
        std::string header, row0;
        std::getline(is, header);
        std::getline(is, row0);
        is.close();
        std::ofstream os(city.dir + "/index.csv", std::ios::app);
        os << "roof_extra" << row0.substr(row0.find(',')) << "\n";
    }
    const auto responses = session(
        server, {"{\"op\":\"rank\",\"id\":\"roof_extra\"}",
                 "{\"op\":\"reload\"}",
                 "{\"op\":\"rank\",\"id\":\"roof_extra\"}"});
    ASSERT_EQ(responses.size(), 3u);
    EXPECT_NE(responses[0].find("\"status\":\"error\""), std::string::npos);
    EXPECT_EQ(responses[1],
              "{\"seq\":1,\"op\":\"reload\",\"status\":\"ok\","
              "\"roofs\":10}");
    EXPECT_NE(responses[2].find("\"status\":\"ok\""), std::string::npos);

    // A server started without an index path rejects reload.
    ServerOptions no_index = city.fast_options();
    no_index.index_path.clear();
    Server fixed = city.make_server(std::move(no_index));
    const auto rejected = session(fixed, {"{\"op\":\"reload\"}"});
    ASSERT_EQ(rejected.size(), 1u);
    EXPECT_NE(rejected[0].find("\"status\":\"error\""), std::string::npos);
}

}  // namespace
}  // namespace pvfp::serve

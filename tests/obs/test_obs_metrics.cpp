/// Tests for pvfp/obs/metrics: the lock-free sharded registry, the
/// fixed-order JSON codec, the runtime enable gate, and the
/// thread-count invariance of deterministic counters — the contract the
/// CI `obs` job leans on.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pvfp/gis/json.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::obs {
namespace {

#ifndef PVFP_OBS_DISABLED

/// Every test runs with telemetry forced on against a private registry
/// (full isolation from the global one), and restores the switch.
class ObsMetrics : public ::testing::Test {
protected:
    void SetUp() override {
        was_enabled_ = enabled();
        set_enabled(true);
    }
    void TearDown() override { set_enabled(was_enabled_); }

    MetricsRegistry reg_;

private:
    bool was_enabled_ = false;
};

std::uint64_t counter_value(const MetricsSnapshot& snap,
                            const std::string& name) {
    for (const auto& [n, v] : snap.counters)
        if (n == name) return v;
    ADD_FAILURE() << "counter '" << name << "' not in snapshot";
    return 0;
}

TEST_F(ObsMetrics, CounterAccumulatesAndSnapshotReads) {
    Counter c = reg_.counter("test.events");
    c.add();
    c.add(41);
    EXPECT_EQ(counter_value(reg_.snapshot(), "test.events"), 42u);
}

TEST_F(ObsMetrics, RegistrationIsIdempotentByName) {
    Counter a = reg_.counter("test.same");
    Counter b = reg_.counter("test.same");
    a.add(1);
    b.add(2);  // same cell: both handles feed one metric
    EXPECT_EQ(counter_value(reg_.snapshot(), "test.same"), 3u);
    EXPECT_EQ(reg_.snapshot().counters.size(), 1u);
}

TEST_F(ObsMetrics, KindCollisionThrows) {
    reg_.counter("test.kind");
    EXPECT_THROW(reg_.gauge("test.kind"), InvalidArgument);
    EXPECT_THROW(reg_.histogram("test.kind", {1, 2}), InvalidArgument);
    reg_.histogram("test.hist", {1, 2});
    EXPECT_THROW(reg_.counter("test.hist"), InvalidArgument);
    EXPECT_THROW(reg_.histogram("test.hist", {1, 2, 3}), InvalidArgument);
    EXPECT_THROW(reg_.histogram("test.bad", {}), InvalidArgument);
    EXPECT_THROW(reg_.histogram("test.bad", {5, 5}), InvalidArgument);
    EXPECT_THROW(reg_.histogram("test.bad", {5, 2}), InvalidArgument);
}

TEST_F(ObsMetrics, GaugeLastWriteWins) {
    Gauge g = reg_.gauge("test.depth");
    g.set(3.0);
    g.set(1.5);
    const MetricsSnapshot snap = reg_.snapshot();
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].first, "test.depth");
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 1.5);
}

TEST_F(ObsMetrics, HistogramBucketsByUpperBoundWithOverflow) {
    HistogramHandle h = reg_.histogram("test.lat", {10, 100, 1000});
    h.record(5);     // <= 10        -> bucket 0
    h.record(10);    // <= 10        -> bucket 0 (bounds are inclusive)
    h.record(11);    // <= 100       -> bucket 1
    h.record(1000);  // <= 1000      -> bucket 2
    h.record(5000);  // past the end -> overflow bucket 3
    const MetricsSnapshot snap = reg_.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramSnapshot& hs = snap.histograms[0];
    EXPECT_EQ(hs.name, "test.lat");
    EXPECT_EQ(hs.bounds, (std::vector<std::uint64_t>{10, 100, 1000}));
    EXPECT_EQ(hs.buckets, (std::vector<std::uint64_t>{2, 1, 1, 1}));
    EXPECT_EQ(hs.count, 5u);
    EXPECT_EQ(hs.sum, 5u + 10 + 11 + 1000 + 5000);
}

TEST_F(ObsMetrics, DisabledSwitchDropsUpdates) {
    Counter c = reg_.counter("test.gated");
    Gauge g = reg_.gauge("test.gated_gauge");
    HistogramHandle h = reg_.histogram("test.gated_hist", {10});
    set_enabled(false);
    c.add(7);
    g.set(9.0);
    h.record(3);
    set_enabled(true);
    const MetricsSnapshot snap = reg_.snapshot();
    EXPECT_EQ(counter_value(snap, "test.gated"), 0u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
    EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST_F(ObsMetrics, DefaultConstructedHandlesAreInertNoops) {
    Counter c;
    Gauge g;
    HistogramHandle h;
    c.add(5);
    g.set(1.0);
    h.record(2);  // must not crash or register anything
    EXPECT_TRUE(reg_.snapshot().counters.empty());
}

TEST_F(ObsMetrics, CountsSurviveThreadChurn) {
    Counter c = reg_.counter("test.churn");
    for (int t = 0; t < 8; ++t) {
        std::thread worker([&] { c.add(10); });
        worker.join();  // shard retires; total must fold, not vanish
    }
    EXPECT_EQ(counter_value(reg_.snapshot(), "test.churn"), 80u);
}

TEST_F(ObsMetrics, ConcurrentAddsSumExactly) {
    Counter c = reg_.counter("test.race");
    HistogramHandle h = reg_.histogram("test.race_hist", {100});
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&] {
            for (int i = 0; i < 10'000; ++i) {
                c.add();
                h.record(static_cast<std::uint64_t>(i % 7));
            }
        });
    for (std::thread& w : workers) w.join();
    const MetricsSnapshot snap = reg_.snapshot();
    EXPECT_EQ(counter_value(snap, "test.race"), 40'000u);
    EXPECT_EQ(snap.histograms[0].count, 40'000u);
}

/// The invariance the obs design doc promises: counters that account a
/// deterministic workload are bitwise identical across thread counts.
TEST_F(ObsMetrics, DeterministicCountersAreThreadCountInvariant) {
    const auto run_workload = [&](const std::string& prefix) {
        Counter items = reg_.counter(prefix + ".items");
        HistogramHandle sizes =
            reg_.histogram(prefix + ".sizes", {8, 64, 512});
        parallel_for(0, 1000, 16, [&](long begin, long end) {
            for (long i = begin; i < end; ++i) {
                items.add();
                sizes.record(static_cast<std::uint64_t>((i * 37) % 700));
            }
        });
    };
    const int saved = thread_count();
    set_thread_count(1);
    run_workload("t1");
    set_thread_count(4);
    run_workload("t4");
    set_thread_count(saved);

    const MetricsSnapshot snap = reg_.snapshot();
    EXPECT_EQ(counter_value(snap, "t1.items"), counter_value(snap,
                                                             "t4.items"));
    ASSERT_EQ(snap.histograms.size(), 2u);
    EXPECT_EQ(snap.histograms[0].buckets, snap.histograms[1].buckets);
    EXPECT_EQ(snap.histograms[0].sum, snap.histograms[1].sum);
}

TEST_F(ObsMetrics, ResetZeroesValuesButKeepsDefinitionsAndHandles) {
    Counter c = reg_.counter("test.reset");
    Gauge g = reg_.gauge("test.reset_gauge");
    c.add(5);
    g.set(2.0);
    reg_.reset_for_tests();
    MetricsSnapshot snap = reg_.snapshot();
    EXPECT_EQ(counter_value(snap, "test.reset"), 0u);  // definition kept
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.0);
    // Handles issued before the reset keep working afterwards.
    c.add(3);
    g.set(4.0);
    snap = reg_.snapshot();
    EXPECT_EQ(counter_value(snap, "test.reset"), 3u);
    EXPECT_DOUBLE_EQ(snap.gauges[0].second, 4.0);
}

TEST_F(ObsMetrics, JsonHasFixedSectionOrderAndSortedNames) {
    reg_.counter("b.count").add(2);
    reg_.counter("a.count").add(1);
    reg_.gauge("z.gauge").set(0.5);
    reg_.histogram("m.hist", {10, 20}).record(15);
    const std::string json = reg_.snapshot_json();

    // Byte-stable prefix: the three sections in fixed order, counter
    // names sorted.
    EXPECT_EQ(json.find("{\"counters\":{\"a.count\":1,\"b.count\":2}"), 0u);
    EXPECT_NE(json.find("\"gauges\":{\"z.gauge\":0.500000}"),
              std::string::npos);
    EXPECT_NE(json.find("\"histograms\":{\"m.hist\":{\"count\":1,"
                        "\"sum\":15,\"bounds\":[10,20],"
                        "\"buckets\":[0,1,0]}}"),
              std::string::npos);

    // And it parses as strict JSON with the expected shape.
    const gis::JsonValue doc = gis::JsonValue::parse(json);
    const auto& top = doc.as_object();
    ASSERT_EQ(top.size(), 3u);
    EXPECT_EQ(top[0].first, "counters");
    EXPECT_EQ(top[1].first, "gauges");
    EXPECT_EQ(top[2].first, "histograms");
    EXPECT_EQ(doc.at("counters").at("a.count").as_number(), 1.0);
    EXPECT_EQ(doc.at("histograms").at("m.hist").at("buckets")
                  .as_array().size(), 3u);
}

TEST_F(ObsMetrics, EqualTelemetryGivesEqualJsonBytes) {
    MetricsRegistry other;
    for (MetricsRegistry* r : {&reg_, &other}) {
        r->counter("x.n").add(3);
        r->gauge("x.g").set(1.25);
        r->histogram("x.h", {5}).record(4);
    }
    EXPECT_EQ(reg_.snapshot_json(), other.snapshot_json());
}

TEST_F(ObsMetrics, LatencyBoundsAreAscendingAndSpanMicroToSeconds) {
    const std::vector<std::uint64_t>& bounds = latency_bounds_ns();
    ASSERT_FALSE(bounds.empty());
    EXPECT_EQ(bounds.front(), 1'000u);  // 1 us
    EXPECT_EQ(bounds.back(), 10'000'000'000u);  // 10 s
    for (std::size_t i = 1; i < bounds.size(); ++i)
        EXPECT_LT(bounds[i - 1], bounds[i]);
}

TEST(ObsMetricsGlobal, GlobalRegistrySingletonAndEnvGate) {
    EXPECT_EQ(&registry(), &registry());
    // enabled() honours set_enabled in both directions.
    const bool was = enabled();
    set_enabled(true);
    EXPECT_TRUE(enabled());
    set_enabled(false);
    EXPECT_FALSE(enabled());
    set_enabled(was);
}

#else  // PVFP_OBS_DISABLED

TEST(ObsMetricsDisabled, EverythingIsAnInertStub) {
    MetricsRegistry reg;
    reg.counter("x").add(5);
    reg.gauge("y").set(1.0);
    reg.histogram("z", {1}).record(2);
    EXPECT_TRUE(reg.snapshot().counters.empty());
    EXPECT_EQ(reg.snapshot_json(),
              "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
}

#endif  // PVFP_OBS_DISABLED

}  // namespace
}  // namespace pvfp::obs

/// Tests for pvfp/obs/trace: scoped spans, the deterministic span.*
/// call counters, the Chrome trace-event export, and the
/// drop-when-full buffer contract.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "pvfp/gis/json.hpp"
#include "pvfp/obs/metrics.hpp"
#include "pvfp/obs/trace.hpp"

namespace pvfp::obs {
namespace {

#ifndef PVFP_OBS_DISABLED

/// Spans talk to the *global* registry and the global trace state, so
/// each test starts from a clean slate and restores both switches.
class ObsTrace : public ::testing::Test {
protected:
    void SetUp() override {
        was_enabled_ = enabled();
        was_trace_ = trace_enabled();
        set_enabled(true);
        set_trace_enabled(true);
        registry().reset_for_tests();
        reset_trace_for_tests();
    }
    void TearDown() override {
        reset_trace_for_tests();
        registry().reset_for_tests();
        set_enabled(was_enabled_);
        set_trace_enabled(was_trace_);
    }

    static std::uint64_t span_count(const std::string& name) {
        for (const auto& [n, v] : registry().snapshot().counters)
            if (n == "span." + name) return v;
        return 0;
    }

private:
    bool was_enabled_ = false;
    bool was_trace_ = false;
};

void traced_work() { PVFP_TRACE_SPAN("test.unit_span"); }

TEST_F(ObsTrace, SpanRecordsEventAndCountsCall) {
    traced_work();
    traced_work();
    EXPECT_EQ(span_count("test.unit_span"), 2u);

    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
    EXPECT_EQ(doc.at("pvfp_dropped_spans").as_number(), 0.0);
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);
    for (const gis::JsonValue& ev : events) {
        EXPECT_EQ(ev.at("name").as_string(), "test.unit_span");
        EXPECT_EQ(ev.at("ph").as_string(), "X");
        EXPECT_EQ(ev.at("pid").as_number(), 1.0);
        EXPECT_EQ(ev.at("tid").as_number(), 1.0);  // one thread so far
        EXPECT_GE(ev.at("dur").as_number(), 0.0);
        EXPECT_GE(ev.at("ts").as_number(), 0.0);
    }
}

TEST_F(ObsTrace, CountsStillAccumulateWhenTimingIsOff) {
    set_trace_enabled(false);
    traced_work();
    traced_work();
    traced_work();
    // Deterministic call counter advances; no timed events appear.
    EXPECT_EQ(span_count("test.unit_span"), 3u);
    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST_F(ObsTrace, FullyDisabledSpansCostNothingVisible) {
    set_enabled(false);
    set_trace_enabled(false);
    traced_work();
    EXPECT_EQ(span_count("test.unit_span"), 0u);
    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

TEST_F(ObsTrace, ThreadsGetDistinctTidsInFirstSeenOrder) {
    traced_work();  // tid 1 = this thread
    std::thread other([] { traced_work(); });
    other.join();   // tid 2, exporter still sees its buffer

    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    const auto& events = doc.at("traceEvents").as_array();
    ASSERT_EQ(events.size(), 2u);
    std::vector<double> tids;
    for (const gis::JsonValue& ev : events)
        tids.push_back(ev.at("tid").as_number());
    EXPECT_EQ(tids, (std::vector<double>{1.0, 2.0}));
}

TEST_F(ObsTrace, NestedSpansAllRecorded) {
    {
        PVFP_TRACE_SPAN("test.outer");
        {
            PVFP_TRACE_SPAN("test.inner");
        }
    }
    EXPECT_EQ(span_count("test.outer"), 1u);
    EXPECT_EQ(span_count("test.inner"), 1u);
    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    EXPECT_EQ(doc.at("traceEvents").as_array().size(), 2u);
}

TEST_F(ObsTrace, FullBufferDropsInsteadOfOverwriting) {
    // kCapacity is 64k per thread; overflow it and check accounting.
    constexpr int kTotal = (1 << 16) + 100;
    for (int i = 0; i < kTotal; ++i) traced_work();
    EXPECT_EQ(dropped_spans(), 100u);
    // Call counts are not subject to the buffer: all calls counted.
    EXPECT_EQ(span_count("test.unit_span"),
              static_cast<std::uint64_t>(kTotal));
    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    EXPECT_EQ(doc.at("pvfp_dropped_spans").as_number(), 100.0);
    EXPECT_EQ(doc.at("traceEvents").as_array().size(),
              static_cast<std::size_t>(1 << 16));
}

TEST_F(ObsTrace, ResetClearsSpansAndDropCountButSitesSurvive) {
    traced_work();
    reset_trace_for_tests();
    registry().reset_for_tests();
    const gis::JsonValue cleared =
        gis::JsonValue::parse(chrome_trace_json());
    EXPECT_TRUE(cleared.at("traceEvents").as_array().empty());
    // The static SpanSite keeps working after both resets.
    traced_work();
    EXPECT_EQ(span_count("test.unit_span"), 1u);
    const gis::JsonValue doc = gis::JsonValue::parse(chrome_trace_json());
    EXPECT_EQ(doc.at("traceEvents").as_array().size(), 1u);
}

TEST_F(ObsTrace, ExportIsValidJsonUnderConcurrentRecording) {
    std::atomic<bool> stop{false};
    std::thread recorder([&] {
        while (!stop.load(std::memory_order_relaxed)) traced_work();
    });
    for (int i = 0; i < 50; ++i) {
        // Every interleaving must parse: published slots are immutable.
        EXPECT_NO_THROW(gis::JsonValue::parse(chrome_trace_json()));
    }
    stop.store(true, std::memory_order_relaxed);
    recorder.join();
}

#else  // PVFP_OBS_DISABLED

TEST(ObsTraceDisabled, MacroAndExportAreInertStubs) {
    {
        PVFP_TRACE_SPAN("test.noop");
    }
    EXPECT_EQ(dropped_spans(), 0u);
    EXPECT_EQ(chrome_trace_json(),
              "{\"displayTimeUnit\":\"ms\",\"pvfp_dropped_spans\":0,"
              "\"traceEvents\":[]}");
}

#endif  // PVFP_OBS_DISABLED

}  // namespace
}  // namespace pvfp::obs

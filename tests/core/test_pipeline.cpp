/// Integration tests: the full scene -> energy pipeline on the toy and
/// residential scenarios, the paper's headline invariants, and the roof
/// library's Table-I geometry.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

TEST(Pipeline, PreparesToyScenarioConsistently) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    EXPECT_GT(p.area.valid_count, 0);
    EXPECT_EQ(p.field.width(), p.area.width);
    EXPECT_EQ(p.field.height(), p.area.height);
    EXPECT_EQ(p.suitability.suitability.width(), p.area.width);
    EXPECT_EQ(p.geometry.k1, 8);
    EXPECT_EQ(p.geometry.k2, 4);
    // Suitability is positive exactly on valid cells.
    for (int y = 0; y < p.area.height; ++y) {
        for (int x = 0; x < p.area.width; ++x) {
            if (p.area.valid(x, y))
                EXPECT_GT(p.suitability.suitability(x, y), 0.0);
            else
                EXPECT_DOUBLE_EQ(p.suitability.suitability(x, y), 0.0);
        }
    }
}

TEST(Pipeline, ProposedBeatsOrMatchesTraditionalOnToy) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const PlacementComparison cmp = compare_placements(p, pv::Topology{2, 2});
    EXPECT_GT(cmp.traditional_eval.energy_kwh, 0.0);
    EXPECT_GT(cmp.proposed_eval.energy_kwh, 0.0);
    // The paper's headline invariant: the suitability-driven sparse
    // placement does not lose to the compact baseline.  On this coarse
    // (73-day, hourly) toy horizon sampling noise can let the baseline
    // tie or edge ahead by a fraction of a percent; the full-year
    // experiments (EXPERIMENTS.md) show the real gap.
    EXPECT_GE(cmp.proposed_eval.energy_kwh,
              0.98 * cmp.traditional_eval.energy_kwh);
    // Both plans feasible and of the right size.
    std::string why;
    EXPECT_TRUE(floorplan_feasible(cmp.proposed, p.area, &why)) << why;
    EXPECT_TRUE(floorplan_feasible(cmp.traditional, p.area, &why)) << why;
    EXPECT_EQ(cmp.proposed.module_count(), 4);
    EXPECT_EQ(cmp.traditional.module_count(), 4);
}

TEST(Pipeline, EnergyScalesWithPlausiblePerModuleYield) {
    // Per-module yearly yield must be physically plausible: a 165 Wp
    // module in a Torino-like climate yields 120-260 kWh/yr.  The coarse
    // toy grid covers 73 days (1/5 year): scale accordingly.
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const PlacementComparison cmp = compare_placements(p, pv::Topology{2, 2});
    const double per_module_year =
        cmp.proposed_eval.energy_kwh / 4.0 * (365.0 / 73.0);
    EXPECT_GT(per_module_year, 90.0);
    EXPECT_LT(per_module_year, 320.0);
}

TEST(Pipeline, ResidentialScenarioRuns) {
    core::ScenarioConfig config;
    config.grid = TimeGrid(60, 1, 37);  // fast: every day sampled hourly
    config.weather.seed = 5;
    config.horizon.azimuth_sectors = 36;
    const auto prepared = prepare_scenario(make_residential(), config);
    EXPECT_GT(prepared.area.valid_count, 100);
    // The south gable plane of a 12x4 m roof hosts at least 4 modules.
    const PlacementComparison cmp =
        compare_placements(prepared, pv::Topology{2, 2});
    EXPECT_GT(cmp.proposed_eval.energy_kwh, 0.0);
}

TEST(Pipeline, GoldenRegressionOnFixedSeed) {
    // Regression anchor with wide tolerance: catches accidental changes
    // to defaults, models, or the RNG stream (any deliberate change must
    // update this value consciously).
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const PlacementComparison cmp = compare_placements(p, pv::Topology{2, 2});
    const double e = cmp.proposed_eval.energy_kwh;
    EXPECT_GT(e, 50.0);
    EXPECT_LT(e, 400.0);
}

TEST(RoofLibrary, PaperGeometryDimensions) {
    // Table I: Roof1 287x51, Roof2 298x51, Roof3 298x52 cells at s=0.2.
    ScenarioConfig config;  // only geometry is needed: tiny horizon cost
    const struct {
        RoofScenario scenario;
        int w;
        int h;
    } cases[] = {
        {make_roof1(), 287, 51},
        {make_roof2(), 298, 51},
        {make_roof3(), 298, 52},
    };
    for (const auto& c : cases) {
        const geo::Raster dsm = c.scenario.scene.rasterize(0.2);
        const geo::PlacementArea area = geo::extract_placement_area(
            dsm, c.scenario.scene, c.scenario.roof_index, config.area);
        // Bounding box within one cell of the paper's numbers (edge
        // margins can trim a row/column).
        EXPECT_NEAR(area.width, c.w, 4) << c.scenario.name;
        EXPECT_NEAR(area.height, c.h, 4) << c.scenario.name;
        // Ng below W*H (obstacles) but a sane fraction of it.
        EXPECT_LT(area.valid_count, area.width * area.height);
        EXPECT_GT(area.valid_count,
                  static_cast<int>(0.45 * area.width * area.height))
            << c.scenario.name;
        // 26 deg lean-to facing S/SW like the paper's roofs.
        EXPECT_NEAR(rad2deg(area.tilt_rad), 26.0, 1e-9);
        EXPECT_GT(rad2deg(area.azimuth_rad), 180.0 - 1e-9);
        EXPECT_LT(rad2deg(area.azimuth_rad), 225.0);
    }
}

TEST(RoofLibrary, ToyAndResidentialProduceValidScenes) {
    const auto toy = make_toy();
    EXPECT_EQ(toy.scene.roof_count(), 1);
    const auto res = make_residential();
    EXPECT_EQ(res.scene.roof_count(), 2);  // gable = two planes
    // The chosen plane faces south.
    EXPECT_NEAR(res.scene.roof(res.roof_index).azimuth_deg, 180.0, 1e-9);
}

TEST(Pipeline, ConfigValidation) {
    ScenarioConfig config;
    config.cell_size = 0.0;
    EXPECT_THROW(prepare_scenario(make_toy(), config), InvalidArgument);
    // Module not aligned to the grid pitch.
    ScenarioConfig config2;
    config2.grid = TimeGrid(60, 1, 2);
    config2.cell_size = 0.3;
    EXPECT_THROW(prepare_scenario(make_toy(), config2), InvalidArgument);
}

}  // namespace
}  // namespace pvfp::core

/// Tests for the energy evaluator: closed-form checks on uniform fields,
/// mismatch accounting, wiring losses, stride scaling, and the worst-cell
/// irradiance mode.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.hpp"
#include "pvfp/core/evaluator.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::coarse_grid;
using pvfp::testing::constant_weather;
using pvfp::testing::flat_area;
using pvfp::testing::flat_field;

Floorplan two_by_one_plan() {
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {2, 1};
    plan.modules = {{0, 0}, {4, 0}};
    return plan;
}

TEST(Evaluator, UniformFieldHasNoMismatchLoss) {
    const TimeGrid grid = coarse_grid(4);
    const auto field = flat_field(12, 4, grid, constant_weather(grid));
    const auto area = flat_area(12, 4);
    const pv::EmpiricalModuleModel model;
    const auto result =
        evaluate_floorplan(two_by_one_plan(), area, field, model);
    EXPECT_GT(result.energy_kwh, 0.0);
    EXPECT_NEAR(result.mismatch_loss_kwh, 0.0, 1e-9);
    EXPECT_NEAR(result.energy_kwh + result.wiring_loss_kwh,
                result.ideal_energy_kwh, 1e-9);
    // Adjacent modules: no extra cable at all.
    EXPECT_DOUBLE_EQ(result.extra_cable_m, 0.0);
    EXPECT_DOUBLE_EQ(result.wiring_loss_kwh, 0.0);
}

TEST(Evaluator, EnergyMatchesHandIntegration) {
    // Single module on a uniform field: energy = sum over daylight steps
    // of P(G, Tact) * dt.
    const TimeGrid grid = coarse_grid(2);
    const auto field = flat_field(4, 2, grid, constant_weather(grid));
    const auto area = flat_area(4, 2);
    const pv::EmpiricalModuleModel model;
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {1, 1};
    plan.modules = {{0, 0}};
    const auto result = evaluate_floorplan(plan, area, field, model);

    double expected_kwh = 0.0;
    const double k = field.config().thermal_k;
    for (long s = 0; s < field.steps(); ++s) {
        if (!field.is_daylight(s)) continue;
        const double g = field.cell_irradiance(0, 0, s);
        const double t = field.air_temperature(s) + k * g;
        expected_kwh += model.power(g, t) * grid.step_hours() / 1000.0;
    }
    EXPECT_NEAR(result.energy_kwh, expected_kwh, 1e-9);
}

TEST(Evaluator, WeakModuleCreatesMismatchLoss) {
    // Non-uniform field via a shading wall: put one module of the string
    // near the wall and compare against two sunny modules.
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const auto& area = prepared.area;
    // Find a sunny anchor and a shaded anchor from the suitability map.
    const auto anchors = enumerate_anchors(area, prepared.geometry);
    ASSERT_GE(anchors.size(), 2u);
    double best = -1.0;
    double worst = 1e18;
    ModulePlacement sunny{};
    ModulePlacement dark{};
    for (const auto& a : anchors) {
        const double sc =
            anchor_score(prepared.suitability.suitability,
                         prepared.geometry, a.x, a.y,
                         AnchorScore::FootprintMean);
        if (sc > best) {
            best = sc;
            sunny = a;
        }
        if (sc < worst) {
            worst = sc;
            dark = a;
        }
    }
    ASSERT_GT(best, worst);

    Floorplan mixed;
    mixed.geometry = prepared.geometry;
    mixed.topology = {2, 1};
    mixed.modules = {sunny, dark};
    ASSERT_FALSE(modules_overlap(sunny, dark, prepared.geometry));
    const auto result = evaluate_floorplan(mixed, area, prepared.field,
                                           prepared.model);
    EXPECT_GT(result.mismatch_loss_kwh, 0.0);
    EXPECT_LT(result.energy_kwh, result.ideal_energy_kwh);
}

TEST(Evaluator, WiringLossScalesWithSeparation) {
    const TimeGrid grid = coarse_grid(2);
    const auto field = flat_field(30, 2, grid, constant_weather(grid));
    const auto area = flat_area(30, 2);
    const pv::EmpiricalModuleModel model;

    Floorplan near = two_by_one_plan();
    Floorplan far = two_by_one_plan();
    far.modules[1] = {24, 0};  // anchors 24 cells apart

    const auto near_result = evaluate_floorplan(near, area, field, model);
    const auto far_result = evaluate_floorplan(far, area, field, model);
    EXPECT_DOUBLE_EQ(near_result.extra_cable_m, 0.0);
    // Center distance = 24 cells = 4.8 m; minus the 1.6 m connector
    // -> 3.2 m of extra cable (paper Fig. 4b with dv = 0).
    EXPECT_NEAR(far_result.extra_cable_m, 3.2, 1e-9);
    EXPECT_GT(far_result.wiring_loss_kwh, 0.0);
    EXPECT_LT(far_result.energy_kwh, near_result.energy_kwh);
    EXPECT_NEAR(far_result.wiring_cost_usd, 3.2, 1e-9);

    // Disabling wiring loss removes the penalty but keeps the report.
    EvaluationOptions no_wire;
    no_wire.include_wiring_loss = false;
    const auto free_wire = evaluate_floorplan(far, area, field, model,
                                              no_wire);
    EXPECT_NEAR(free_wire.energy_kwh, near_result.energy_kwh, 1e-9);
    EXPECT_NEAR(free_wire.extra_cable_m, 3.2, 1e-9);
    EXPECT_DOUBLE_EQ(free_wire.wiring_loss_kwh, 0.0);
}

TEST(Evaluator, WiringLossMagnitudeMatchesPaperFormula) {
    // Constant irradiance => constant string current I; wiring loss over
    // the horizon must equal R * L * I^2 * hours (paper Section V-C).
    const TimeGrid grid = coarse_grid(1);
    const auto field = flat_field(30, 2, grid, constant_weather(grid));
    const auto area = flat_area(30, 2);
    const pv::EmpiricalModuleModel model;
    Floorplan far = two_by_one_plan();
    far.modules[1] = {24, 0};
    EvaluationOptions opt;
    const auto result = evaluate_floorplan(far, area, field, model, opt);

    double expected_kwh = 0.0;
    const double k = field.config().thermal_k;
    for (long s = 0; s < field.steps(); ++s) {
        if (!field.is_daylight(s)) continue;
        const double g = field.cell_irradiance(0, 0, s);
        const double t = field.air_temperature(s) + k * g;
        const double i = model.current(g, t);
        expected_kwh += opt.wiring.resistance_ohm_per_m * 3.2 * i * i *
                        grid.step_hours() / 1000.0;
    }
    EXPECT_NEAR(result.wiring_loss_kwh, expected_kwh, 1e-9);
}

TEST(Evaluator, StrideScalesEnergyApproximately) {
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    Floorplan plan;
    plan.geometry = prepared.geometry;
    plan.topology = {1, 1};
    plan.modules = {enumerate_anchors(prepared.area, prepared.geometry)
                        .front()};
    EvaluationOptions full;
    EvaluationOptions strided;
    strided.step_stride = 4;
    const auto a = evaluate_floorplan(plan, prepared.area, prepared.field,
                                      prepared.model, full);
    const auto b = evaluate_floorplan(plan, prepared.area, prepared.field,
                                      prepared.model, strided);
    EXPECT_NEAR(b.energy_kwh / a.energy_kwh, 1.0, 0.1);
}

TEST(Evaluator, TrailingStrideIntervalIsClamped) {
    // 24 hourly steps at stride 7 sample s = 0, 7, 14, 21; the last
    // sample must be billed for the 3 remaining steps, not 7 (total
    // billed time = the horizon, not 28 h).
    const TimeGrid grid = coarse_grid(1);
    ASSERT_EQ(grid.total_steps(), 24);
    const auto field = flat_field(4, 2, grid, constant_weather(grid));
    const auto area = flat_area(4, 2);
    const pv::EmpiricalModuleModel model;
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {1, 1};
    plan.modules = {{0, 0}};
    EvaluationOptions strided;
    strided.step_stride = 7;
    const auto result =
        evaluate_floorplan(plan, area, field, model, strided);

    double expected_kwh = 0.0;
    const double k = field.config().thermal_k;
    for (long s = 0; s < field.steps(); s += 7) {
        if (!field.is_daylight(s)) continue;
        const double dt_h =
            grid.step_hours() * static_cast<double>(
                                    std::min<long>(7, field.steps() - s));
        const double g = field.cell_irradiance(0, 0, s);
        const double t = field.air_temperature(s) + k * g;
        expected_kwh += model.power(g, t) * dt_h / 1000.0;
    }
    EXPECT_NEAR(result.energy_kwh, expected_kwh, 1e-12);
    EXPECT_GT(result.energy_kwh, 0.0);
}

TEST(Evaluator, WorstCellModeIsPessimistic) {
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    // A module near the shaded east edge sees mean > min.
    const auto anchors = enumerate_anchors(prepared.area,
                                           prepared.geometry);
    Floorplan plan;
    plan.geometry = prepared.geometry;
    plan.topology = {1, 1};
    plan.modules = {anchors.back()};
    EvaluationOptions mean_mode;
    EvaluationOptions worst_mode;
    worst_mode.module_irradiance = ModuleIrradiance::WorstCell;
    const auto mean_result = evaluate_floorplan(
        plan, prepared.area, prepared.field, prepared.model, mean_mode);
    const auto worst_result = evaluate_floorplan(
        plan, prepared.area, prepared.field, prepared.model, worst_mode);
    EXPECT_LE(worst_result.energy_kwh, mean_result.energy_kwh + 1e-9);
}

TEST(Evaluator, PerStringReportAddsUp) {
    const TimeGrid grid = coarse_grid(1);
    const auto field = flat_field(20, 6, grid, constant_weather(grid));
    const auto area = flat_area(20, 6);
    const pv::EmpiricalModuleModel model;
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {2, 2};
    plan.modules = {{0, 0}, {4, 0}, {0, 2}, {4, 2}};
    const auto result = evaluate_floorplan(plan, area, field, model);
    ASSERT_EQ(result.strings.size(), 2u);
    const double sum = result.strings[0].energy_kwh +
                       result.strings[1].energy_kwh;
    EXPECT_NEAR(sum, result.energy_kwh + result.wiring_loss_kwh, 1e-9);
}

TEST(Evaluator, RejectsBadInputs) {
    const TimeGrid grid = coarse_grid(1);
    const auto field = flat_field(8, 4, grid, constant_weather(grid));
    const auto area = flat_area(8, 4);
    const pv::EmpiricalModuleModel model;
    Floorplan overlap = two_by_one_plan();
    overlap.modules[1] = {2, 0};
    EXPECT_THROW(evaluate_floorplan(overlap, area, field, model),
                 InvalidArgument);
    Floorplan plan = two_by_one_plan();
    EvaluationOptions bad;
    bad.step_stride = 0;
    EXPECT_THROW(evaluate_floorplan(plan, area, field, model, bad),
                 InvalidArgument);
    Floorplan wrong_topo = two_by_one_plan();
    wrong_topo.topology = {3, 1};
    EXPECT_THROW(evaluate_floorplan(wrong_topo, area, field, model),
                 InvalidArgument);
}

TEST(Evaluator, AnchorCellModeUsesTheGridPointValue) {
    // On a uniform field anchor-cell equals footprint-mean; with the real
    // toy scene (east-wall gradient) a module straddling the gradient
    // differs between the two granularities.
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const auto anchors = enumerate_anchors(prepared.area,
                                           prepared.geometry);
    Floorplan plan;
    plan.geometry = prepared.geometry;
    plan.topology = {1, 1};
    plan.modules = {anchors.back()};  // near the shaded east edge
    long day_step = -1;
    for (long s = 0; s < prepared.field.steps(); ++s)
        if (prepared.field.is_daylight(s)) {
            day_step = s;
            break;
        }
    ASSERT_GE(day_step, 0);
    const double anchor_g = module_irradiance(
        plan, 0, prepared.field, day_step, ModuleIrradiance::AnchorCell);
    const auto& m = plan.modules[0];
    EXPECT_DOUBLE_EQ(anchor_g,
                     prepared.field.cell_irradiance(m.x, m.y, day_step));
    // Anchor-cell is bounded by the footprint extremes.
    const double worst = module_irradiance(plan, 0, prepared.field,
                                           day_step,
                                           ModuleIrradiance::WorstCell);
    EXPECT_GE(anchor_g, worst - 1e-12);
}

TEST(ModuleIrradianceHelper, MeanAndWorst) {
    const TimeGrid grid = coarse_grid(1);
    const auto field = flat_field(8, 4, grid, constant_weather(grid));
    Floorplan plan = two_by_one_plan();
    // Uniform field: mean == worst.
    long day_step = -1;
    for (long s = 0; s < field.steps(); ++s)
        if (field.is_daylight(s)) {
            day_step = s;
            break;
        }
    ASSERT_GE(day_step, 0);
    EXPECT_DOUBLE_EQ(
        module_irradiance(plan, 0, field, day_step,
                          ModuleIrradiance::FootprintMean),
        module_irradiance(plan, 0, field, day_step,
                          ModuleIrradiance::WorstCell));
    EXPECT_THROW(module_irradiance(plan, 5, field, day_step,
                                   ModuleIrradiance::FootprintMean),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::core

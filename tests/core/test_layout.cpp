/// Tests for layout types: footprint derivation from module dimensions,
/// overlap/fit predicates, anchor enumeration, and floorplan feasibility.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/layout.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::flat_area;
using pvfp::testing::masked_area;

TEST(PanelGeometry, PaperModuleOnPaperGrid) {
    // 160 x 80 cm module on a 20 cm grid: k1 = 8, k2 = 4 (Section III-A).
    const auto g = PanelGeometry::from_module(pv::ModuleSpec{}, 0.2);
    EXPECT_EQ(g.k1, 8);
    EXPECT_EQ(g.k2, 4);
    EXPECT_EQ(g.cell_count(), 32);
}

TEST(PanelGeometry, PortraitSwapsAxes) {
    const auto g = PanelGeometry::from_module(pv::ModuleSpec{}, 0.2, true);
    EXPECT_EQ(g.k1, 4);
    EXPECT_EQ(g.k2, 8);
}

TEST(PanelGeometry, NonMultipleGridRejected) {
    // s = 30 cm does not divide 160 cm.
    EXPECT_THROW(PanelGeometry::from_module(pv::ModuleSpec{}, 0.3),
                 InvalidArgument);
    EXPECT_THROW(PanelGeometry::from_module(pv::ModuleSpec{}, 0.0),
                 InvalidArgument);
    // s = 10 cm works and doubles the cell counts.
    const auto g = PanelGeometry::from_module(pv::ModuleSpec{}, 0.1);
    EXPECT_EQ(g.k1, 16);
    EXPECT_EQ(g.k2, 8);
}

TEST(AnchorFits, BoundsAndValidity) {
    auto area = flat_area(10, 6);
    const PanelGeometry g{4, 2};
    EXPECT_TRUE(anchor_fits(area, g, 0, 0));
    EXPECT_TRUE(anchor_fits(area, g, 6, 4));
    EXPECT_FALSE(anchor_fits(area, g, 7, 0));   // x overflow
    EXPECT_FALSE(anchor_fits(area, g, 0, 5));   // y overflow
    EXPECT_FALSE(anchor_fits(area, g, -1, 0));
    area.valid(5, 1) = 0;  // hole
    EXPECT_FALSE(anchor_fits(area, g, 3, 0));   // covers the hole
    EXPECT_TRUE(anchor_fits(area, g, 0, 2));    // away from the hole
}

TEST(ModulesOverlap, TouchingIsNotOverlapping) {
    const PanelGeometry g{4, 2};
    EXPECT_TRUE(modules_overlap({0, 0}, {3, 1}, g));
    EXPECT_FALSE(modules_overlap({0, 0}, {4, 0}, g));  // side by side
    EXPECT_FALSE(modules_overlap({0, 0}, {0, 2}, g));  // stacked
    EXPECT_TRUE(modules_overlap({2, 1}, {2, 1}, g));   // identical
}

TEST(Floorplan, CentersInMeters) {
    Floorplan plan;
    plan.geometry = {8, 4};
    plan.topology = {1, 1};
    plan.modules = {{0, 0}};
    const auto c = plan.center_m(0, 0.2);
    EXPECT_DOUBLE_EQ(c.x_m, 0.8);  // (0 + 8/2) * 0.2
    EXPECT_DOUBLE_EQ(c.y_m, 0.4);
    EXPECT_THROW(plan.center_m(1, 0.2), InvalidArgument);
    EXPECT_EQ(plan.centers_m(0.2).size(), 1u);
}

TEST(FloorplanFeasible, DetectsEveryViolation) {
    const auto area = flat_area(20, 10);
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {2, 1};
    plan.modules = {{0, 0}, {4, 0}};
    std::string why;
    EXPECT_TRUE(floorplan_feasible(plan, area, &why)) << why;

    plan.modules = {{0, 0}, {2, 1}};  // overlap
    EXPECT_FALSE(floorplan_feasible(plan, area, &why));
    EXPECT_NE(why.find("overlap"), std::string::npos);

    plan.modules = {{0, 0}, {18, 0}};  // out of bounds
    EXPECT_FALSE(floorplan_feasible(plan, area, &why));
    EXPECT_NE(why.find("fit"), std::string::npos);
}

TEST(CenterDistance, EuclideanInCells) {
    const PanelGeometry g{4, 2};
    EXPECT_DOUBLE_EQ(center_distance_cells({0, 0}, {3, 4}, g), 5.0);
    EXPECT_DOUBLE_EQ(center_distance_cells({2, 2}, {2, 2}, g), 0.0);
}

TEST(EnumerateAnchors, CountsOnCleanAndHoledAreas) {
    const auto clean = flat_area(10, 6);
    const PanelGeometry g{4, 2};
    // (10-4+1) * (6-2+1) = 35 anchors.
    EXPECT_EQ(enumerate_anchors(clean, g).size(), 35u);

    Grid2D<unsigned char> mask(10, 6, 1);
    for (int y = 0; y < 6; ++y) mask(5, y) = 0;  // full-height slit
    const auto holed = masked_area(mask);
    // Anchors must avoid x in [2..5]: x in {0,1,6} -> 3 * 5 = 15.
    EXPECT_EQ(enumerate_anchors(holed, g).size(), 15u);
}

TEST(EnumerateAnchors, TooSmallAreaHasNone) {
    const auto tiny = flat_area(3, 3);
    EXPECT_TRUE(enumerate_anchors(tiny, PanelGeometry{4, 2}).empty());
}

}  // namespace
}  // namespace pvfp::core

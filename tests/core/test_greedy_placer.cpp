/// Tests for the paper's greedy floorplanner (Fig. 5): invariants,
/// ranking behaviour, tie-breaking, the distance threshold, covered-cell
/// removal, and determinism.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::flat_area;
using pvfp::testing::masked_area;

Grid2D<double> uniform_suitability(int w, int h, double v = 1.0) {
    return Grid2D<double>(w, h, v);
}

TEST(Greedy, PlacesExactlyNWithoutOverlap) {
    const auto area = flat_area(24, 12);
    const auto s = uniform_suitability(24, 12);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{3, 2};
    const Floorplan plan = place_greedy(area, s, g, topo);
    EXPECT_EQ(plan.module_count(), 6);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(plan, area, &why)) << why;
}

TEST(Greedy, PicksHighestSuitabilityRegion) {
    // A bright 4x2 block at (10, 4) must attract the single module.
    const auto area = flat_area(20, 10);
    auto s = uniform_suitability(20, 10, 1.0);
    for (int y = 4; y < 6; ++y)
        for (int x = 10; x < 14; ++x) s(x, y) = 5.0;
    const Floorplan plan =
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{1, 1});
    EXPECT_EQ(plan.modules[0].x, 10);
    EXPECT_EQ(plan.modules[0].y, 4);
}

TEST(Greedy, CoveredCellsAreRemovedFromL) {
    // Two modules, one bright block: the second module cannot reuse the
    // covered cells and must sit elsewhere (paper Fig. 5 line 7).
    const auto area = flat_area(20, 10);
    auto s = uniform_suitability(20, 10, 1.0);
    for (int y = 4; y < 6; ++y)
        for (int x = 10; x < 14; ++x) s(x, y) = 5.0;
    const Floorplan plan =
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{2, 1});
    EXPECT_FALSE(
        modules_overlap(plan.modules[0], plan.modules[1], plan.geometry));
}

TEST(Greedy, TieBreakPrefersProximity) {
    // Uniform suitability: after the first module, all candidates tie;
    // the wiring tie-breaker must choose a neighbor of the last placed.
    const auto area = flat_area(40, 20);
    const auto s = uniform_suitability(40, 20);
    GreedyOptions opt;
    const Floorplan plan =
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{4, 1}, opt);
    for (int i = 1; i < 4; ++i) {
        const double d = center_distance_cells(
            plan.modules[static_cast<std::size_t>(i)],
            plan.modules[static_cast<std::size_t>(i - 1)], plan.geometry);
        // Adjacent placements: distance equals one footprint dimension.
        EXPECT_LE(d, 4.5) << "module " << i;
    }
}

TEST(Greedy, DistanceThresholdRejectsRemoteOutlier) {
    // Left cluster: two top slots (score 9) then medium cells (5).  Far
    // right: an outlier block (7).  The first two modules land in the
    // cluster either way; the third prefers the outlier unless the
    // distance threshold (2x the mean pairwise distance of the placed
    // modules) rejects it — the paper's filter, isolated.
    const auto area = flat_area(60, 8);
    auto s = uniform_suitability(60, 8, 1.0);
    for (int y = 2; y < 6; ++y)
        for (int x = 0; x < 14; ++x) s(x, y) = 5.0;
    for (int y = 2; y < 4; ++y)
        for (int x = 0; x < 8; ++x) s(x, y) = 9.0;
    for (int y = 2; y < 4; ++y)
        for (int x = 56; x < 60; ++x) s(x, y) = 7.0;

    const PanelGeometry g{4, 2};
    const pv::Topology topo{4, 1};

    GreedyOptions no_thresh;
    no_thresh.enable_distance_threshold = false;
    const Floorplan loose = place_greedy(area, s, g, topo, no_thresh);
    bool outlier_taken = false;
    for (const auto& m : loose.modules)
        if (m.x >= 50) outlier_taken = true;
    EXPECT_TRUE(outlier_taken);

    GreedyOptions with_thresh;
    with_thresh.distance_threshold_factor = 2.0;
    GreedyStats stats;
    const Floorplan tight =
        place_greedy(area, s, g, topo, with_thresh, &stats);
    for (const auto& m : tight.modules) EXPECT_LT(m.x, 50);
    EXPECT_GT(stats.threshold_rejections, 0);
}

TEST(Greedy, ThresholdRelaxedWhenNothingElseFits) {
    // Area = two distant islands, each hosting 2 modules; asking for 4
    // forces the placer to relax the threshold rather than fail.
    Grid2D<unsigned char> mask(60, 2, 0);
    for (int x = 0; x < 8; ++x) mask(x, 0) = mask(x, 1) = 1;
    for (int x = 52; x < 60; ++x) mask(x, 0) = mask(x, 1) = 1;
    const auto area = masked_area(mask);
    const auto s = uniform_suitability(60, 2);
    GreedyStats stats;
    const Floorplan plan =
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{4, 1}, {},
                     &stats);
    EXPECT_EQ(plan.module_count(), 4);
    EXPECT_GT(stats.threshold_relaxations, 0);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(plan, area, &why)) << why;
}

TEST(Greedy, AnchorScoreModesDiffer) {
    // A single hot *cell* attracts TopLeftCell scoring; FootprintMean
    // prefers a uniformly-bright block elsewhere.
    const auto area = flat_area(20, 4);
    auto s = uniform_suitability(20, 4, 1.0);
    s(0, 0) = 100.0;               // hot single cell at the origin anchor
    for (int y = 0; y < 2; ++y)    // uniformly bright block at x=12..15
        for (int x = 12; x < 16; ++x) s(x, y) = 4.0;

    GreedyOptions cell_opt;
    cell_opt.anchor_score = AnchorScore::TopLeftCell;
    const Floorplan by_cell = place_greedy(area, s, PanelGeometry{4, 2},
                                           pv::Topology{1, 1}, cell_opt);
    EXPECT_EQ(by_cell.modules[0].x, 0);
    EXPECT_EQ(by_cell.modules[0].y, 0);

    GreedyOptions mean_opt;
    mean_opt.anchor_score = AnchorScore::FootprintMean;
    const Floorplan by_mean = place_greedy(area, s, PanelGeometry{4, 2},
                                           pv::Topology{1, 1}, mean_opt);
    // Footprint means: hot-cell anchor = (100+7)/8 = 13.4 vs block = 4.
    // The hot cell still wins the mean; bump the block to dominate.
    (void)by_mean;
    auto s2 = s;
    s2(0, 0) = 20.0;  // mean 2.9 < 4.0 now
    const Floorplan by_mean2 = place_greedy(area, s2, PanelGeometry{4, 2},
                                            pv::Topology{1, 1}, mean_opt);
    EXPECT_EQ(by_mean2.modules[0].x, 12);
}

TEST(Greedy, RelativeTieBandGroupsNearEqualCandidates) {
    // Isolated bright island (102) with a slightly dimmer tile below it
    // (99.5) and a remote plain region (100.0).  Under the default 1%
    // band 99.5 counts as "identical" to 100.0, so after taking the
    // island the tie-break pulls the second module to the adjacent dim
    // tile; with a tight band the strictly-higher remote 100.0 wins.
    Grid2D<unsigned char> mask(40, 4, 0);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 20; ++x) mask(x, y) = 1;  // remote region
    for (int y = 0; y < 4; ++y)
        for (int x = 36; x < 40; ++x) mask(x, y) = 1;  // island + tile
    const auto area = masked_area(mask);
    auto s = uniform_suitability(40, 4, 100.0);
    for (int x = 36; x < 40; ++x) {
        s(x, 0) = s(x, 1) = 102.0;  // island
        s(x, 2) = s(x, 3) = 99.5;   // adjacent dim tile
    }
    GreedyOptions opt;
    opt.anchor_score = AnchorScore::FootprintMean;
    opt.tie_epsilon = 0.01;
    opt.enable_distance_threshold = false;
    const Floorplan plan =
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{2, 1}, opt);
    EXPECT_EQ(plan.modules[0].x, 36);
    EXPECT_EQ(plan.modules[0].y, 0);
    EXPECT_EQ(plan.modules[1].x, 36);
    EXPECT_EQ(plan.modules[1].y, 2);  // dim tile via tie-break

    GreedyOptions tight = opt;
    tight.tie_epsilon = 1e-9;
    const Floorplan plan2 = place_greedy(area, s, PanelGeometry{4, 2},
                                         pv::Topology{2, 1}, tight);
    EXPECT_EQ(plan2.modules[0].x, 36);
    // Strictly-higher remote candidates (100.0 > 99.5): the tie group
    // contains only exact 100.0 anchors, the nearest of which is in the
    // remote region.
    EXPECT_LT(plan2.modules[1].x, 20);
}

TEST(Greedy, DeterministicAcrossRuns) {
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const pv::Topology topo{2, 2};
    const Floorplan a = place_greedy(prepared.area,
                                     prepared.suitability.suitability,
                                     prepared.geometry, topo);
    const Floorplan b = place_greedy(prepared.area,
                                     prepared.suitability.suitability,
                                     prepared.geometry, topo);
    ASSERT_EQ(a.module_count(), b.module_count());
    for (int i = 0; i < a.module_count(); ++i)
        EXPECT_EQ(a.modules[static_cast<std::size_t>(i)],
                  b.modules[static_cast<std::size_t>(i)]);
}

TEST(Greedy, InfeasibleWhenAreaTooSmall) {
    const auto area = flat_area(8, 2);
    const auto s = uniform_suitability(8, 2);
    // Two 4x2 modules fit; three do not.
    EXPECT_NO_THROW(
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{2, 1}));
    EXPECT_THROW(
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{3, 1}),
        Infeasible);
}

TEST(Greedy, InputValidation) {
    const auto area = flat_area(8, 4);
    const auto wrong = uniform_suitability(9, 4);
    EXPECT_THROW(
        place_greedy(area, wrong, PanelGeometry{4, 2}, pv::Topology{1, 1}),
        InvalidArgument);
    const auto s = uniform_suitability(8, 4);
    GreedyOptions bad;
    bad.distance_threshold_factor = 0.0;
    EXPECT_THROW(
        place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{1, 1}, bad),
        InvalidArgument);
}

TEST(GreedyStats, CandidateCountReported) {
    const auto area = flat_area(10, 4);
    const auto s = uniform_suitability(10, 4);
    GreedyStats stats;
    place_greedy(area, s, PanelGeometry{4, 2}, pv::Topology{1, 1}, {},
                 &stats);
    EXPECT_EQ(stats.candidate_count, (10 - 4 + 1) * (4 - 2 + 1));
}

/// Sweep: across module counts the placement is always feasible and
/// anchors are sorted by the greedy in non-increasing captured score.
class GreedySweep : public ::testing::TestWithParam<int> {};

TEST_P(GreedySweep, FeasibleAndOrdered) {
    const int n = GetParam();
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const pv::Topology topo{n, 1};
    GreedyOptions opt;
    opt.enable_distance_threshold = false;  // pure ranking for this check
    const Floorplan plan =
        place_greedy(prepared.area, prepared.suitability.suitability,
                     prepared.geometry, topo, opt);
    EXPECT_EQ(plan.module_count(), n);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(plan, prepared.area, &why)) << why;
}

INSTANTIATE_TEST_SUITE_P(ModuleCounts, GreedySweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace pvfp::core

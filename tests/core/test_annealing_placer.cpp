/// Tests for refine_annealing under the *true* yearly-energy objective —
/// the workload the IncrementalEvaluator path exists for.  (The
/// linearized-objective behavior of the closure path is covered by
/// test_optimal_placers.)

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/annealing_placer.hpp"
#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/core/incremental_evaluator.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::ShadedSetup;

Floorplan base_plan() {
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {2, 2};
    // Deliberately poor start: two modules in the ridge-shaded east.
    plan.modules = {{16, 0}, {16, 6}, {0, 0}, {0, 6}};
    return plan;
}

double true_energy(const ShadedSetup& s, const Floorplan& plan) {
    return evaluate_floorplan(plan, s.area, s.field, s.model).energy_kwh;
}

TEST(AnnealingTrueObjective, NeverWorseThanInitial) {
    const ShadedSetup s = pvfp::testing::shaded_setup();
    const Floorplan initial = base_plan();
    const double initial_energy = true_energy(s, initial);
    for (const std::uint64_t seed : {1u, 7u, 42u}) {
        IncrementalEvaluator ev(initial, s.area, s.field, s.model);
        AnnealingOptions aopt;
        aopt.iterations = 400;
        aopt.seed = seed;
        AnnealingStats stats;
        const Floorplan refined = refine_annealing(ev, aopt, &stats);
        // Property: the refined plan is feasible and never worse than the
        // initial one under the true objective (re-checked with a fresh
        // full evaluation, independent of the evaluator's bookkeeping).
        std::string why;
        EXPECT_TRUE(floorplan_feasible(refined, s.area, &why)) << why;
        const double refined_energy = true_energy(s, refined);
        EXPECT_GE(refined_energy + 1e-9, initial_energy) << "seed=" << seed;
        EXPECT_GE(stats.final_objective + 1e-9, stats.initial_objective);
        // The evaluator is left committed at the returned best plan.
        EXPECT_EQ(ev.plan().modules, refined.modules);
        EXPECT_NEAR(ev.energy_kwh(), refined_energy, 1e-9);
    }
}

TEST(AnnealingTrueObjective, NoFullPlanReevaluationInProposalLoop) {
    const ShadedSetup s = pvfp::testing::shaded_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    AnnealingOptions aopt;
    aopt.iterations = 300;
    aopt.seed = 11;
    AnnealingStats stats;
    refine_annealing(ev, aopt, &stats);
    // The hoisting contract: one full pass at construction, everything
    // after is delta work with targeted per-footprint validation — no
    // proposal ever triggered a full-plan evaluation or a full-plan
    // feasibility walk (infeasible anchors are filtered by
    // move_feasible, so none even reaches the evaluator).
    EXPECT_EQ(ev.stats().full_passes, 1);
    EXPECT_EQ(ev.stats().rejected, 0);
    EXPECT_GT(ev.stats().proposals, 0);
    EXPECT_GE(ev.stats().proposals, static_cast<long>(stats.accepted));
}

TEST(AnnealingTrueObjective, IncrementalPathMatchesClosurePath) {
    const ShadedSetup s = pvfp::testing::shaded_setup();
    const Floorplan initial = base_plan();
    AnnealingOptions aopt;
    aopt.iterations = 250;
    aopt.seed = 5;

    const PlacementObjective closure = [&](const Floorplan& p) {
        return evaluate_floorplan(p, s.area, s.field, s.model).energy_kwh;
    };
    AnnealingStats closure_stats;
    const Floorplan via_closure =
        refine_annealing(initial, s.area, closure, aopt, &closure_stats);

    IncrementalEvaluator ev(initial, s.area, s.field, s.model);
    AnnealingStats inc_stats;
    const Floorplan via_delta = refine_annealing(ev, aopt, &inc_stats);

    // Both paths consume the same RNG stream and agree on objective
    // values to ~1e-12 relative, so the accept/reject trajectory — and
    // therefore the result — is identical.
    EXPECT_EQ(via_closure.modules, via_delta.modules);
    EXPECT_EQ(closure_stats.accepted, inc_stats.accepted);
    EXPECT_EQ(closure_stats.improved, inc_stats.improved);
    EXPECT_NEAR(closure_stats.final_objective, inc_stats.final_objective,
                1e-9);
}

TEST(AnnealingTrueObjective, GoldenToyFixedSeedRegression) {
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const pv::Topology topology{2, 2};
    const Floorplan greedy =
        place_greedy(prepared.area, prepared.suitability.suitability,
                     prepared.geometry, topology);
    const double greedy_energy =
        evaluate_floorplan(greedy, prepared.area, prepared.field,
                           prepared.model)
            .energy_kwh;

    IncrementalEvaluator ev(greedy, prepared.area, prepared.field,
                            prepared.model);
    AnnealingOptions aopt;
    aopt.iterations = 800;
    aopt.seed = 7;
    AnnealingStats stats;
    const Floorplan refined = refine_annealing(ev, aopt, &stats);
    const double refined_energy =
        evaluate_floorplan(refined, prepared.area, prepared.field,
                           prepared.model)
            .energy_kwh;

    EXPECT_GE(refined_energy + 1e-9, greedy_energy);
    EXPECT_NEAR(ev.energy_kwh(), refined_energy, 1e-9);
    // Fixed-seed regression: the refined energy on the golden toy roof.
    // Measured on the seed implementation of this suite — it equals the
    // greedy plan's pinned golden energy, i.e. annealing finds no
    // headroom on the toy roof (the paper's implicit claim that greedy
    // suffices).  A deliberate change to the models, defaults, or RNG
    // stream must update it consciously (same contract as
    // kGoldenEnergyKwh in test_golden_toy).
    constexpr double kGoldenRefinedKwh = 137.326;
    EXPECT_NEAR(refined_energy, kGoldenRefinedKwh,
                0.005 * kGoldenRefinedKwh);
}

}  // namespace
}  // namespace pvfp::core

/// Tests for the exhaustive, branch-and-bound, and annealing placers, and
/// the optimality relations among them and the greedy heuristic.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/annealing_placer.hpp"
#include "pvfp/core/bnb_placer.hpp"
#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/exhaustive_placer.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::flat_area;

/// Footprint-suitability sum of a plan (the linearized objective).
double plan_score(const Floorplan& plan, const Grid2D<double>& s) {
    double acc = 0.0;
    for (const auto& m : plan.modules) {
        for (int y = m.y; y < m.y + plan.geometry.k2; ++y)
            for (int x = m.x; x < m.x + plan.geometry.k1; ++x)
                acc += s(x, y);
    }
    return acc;
}

Grid2D<double> random_suitability(int w, int h, std::uint64_t seed) {
    Grid2D<double> s(w, h);
    Rng rng(seed);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x) s(x, y) = rng.uniform(0.5, 5.0);
    return s;
}

TEST(Exhaustive, FindsObviousOptimum) {
    const auto area = flat_area(12, 4);
    auto s = Grid2D<double>(12, 4, 1.0);
    for (int y = 0; y < 2; ++y)
        for (int x = 8; x < 12; ++x) s(x, y) = 10.0;
    ExhaustiveStats stats;
    const Floorplan plan =
        place_exhaustive(area, s, PanelGeometry{4, 2}, pv::Topology{1, 1},
                         nullptr, {}, &stats);
    EXPECT_EQ(plan.modules[0].x, 8);
    EXPECT_EQ(plan.modules[0].y, 0);
    EXPECT_GT(stats.leaves, 0);
}

TEST(Exhaustive, AtLeastAsGoodAsGreedy) {
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
        const auto area = flat_area(10, 6);
        const auto s = random_suitability(10, 6, seed);
        const PanelGeometry g{4, 2};
        const pv::Topology topo{2, 1};
        const Floorplan best = place_exhaustive(area, s, g, topo);
        GreedyOptions gopt;
        gopt.enable_distance_threshold = false;
        const Floorplan greedy = place_greedy(area, s, g, topo, gopt);
        EXPECT_GE(plan_score(best, s) + 1e-9, plan_score(greedy, s))
            << "seed=" << seed;
    }
}

TEST(Exhaustive, CustomObjectiveIsHonored) {
    // Objective: prefer the module as far right as possible, regardless
    // of suitability.
    const auto area = flat_area(10, 2);
    const auto s = Grid2D<double>(10, 2, 1.0);
    const Floorplan plan = place_exhaustive(
        area, s, PanelGeometry{4, 2}, pv::Topology{1, 1},
        [](const Floorplan& p) {
            return static_cast<double>(p.modules[0].x);
        });
    EXPECT_EQ(plan.modules[0].x, 6);
}

TEST(Exhaustive, NodeBudgetEnforced) {
    const auto area = flat_area(30, 12);
    const auto s = random_suitability(30, 12, 9);
    ExhaustiveOptions opt;
    opt.max_nodes = 1000;  // way too small for 3 modules here
    EXPECT_THROW(place_exhaustive(area, s, PanelGeometry{4, 2},
                                  pv::Topology{3, 1}, nullptr, opt),
                 Infeasible);
}

TEST(Exhaustive, InfeasibleInstanceThrows) {
    const auto area = flat_area(4, 2);
    const auto s = Grid2D<double>(4, 2, 1.0);
    EXPECT_THROW(place_exhaustive(area, s, PanelGeometry{4, 2},
                                  pv::Topology{2, 1}),
                 Infeasible);
}

TEST(Bnb, MatchesExhaustiveOnRandomInstances) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        const auto area = flat_area(12, 6);
        const auto s = random_suitability(12, 6, seed);
        const PanelGeometry g{4, 2};
        const pv::Topology topo{2, 1};
        const Floorplan exact = place_exhaustive(area, s, g, topo);
        BnbStats stats;
        const Floorplan bnb = place_bnb(area, s, g, topo, {}, &stats);
        EXPECT_NEAR(plan_score(bnb, s), plan_score(exact, s), 1e-9)
            << "seed=" << seed;
        EXPECT_GT(stats.nodes, 0);
    }
}

TEST(Bnb, PrunesComparedToExhaustive) {
    const auto area = flat_area(14, 6);
    const auto s = random_suitability(14, 6, 77);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{3, 1};
    ExhaustiveStats es;
    place_exhaustive(area, s, g, topo, nullptr, {}, &es);
    BnbStats bs;
    place_bnb(area, s, g, topo, {}, &bs);
    EXPECT_LT(bs.nodes, es.nodes);
    EXPECT_GT(bs.pruned, 0);
}

TEST(Bnb, HandlesLargerInstanceThanExhaustiveCould) {
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    BnbStats stats;
    const Floorplan plan =
        place_bnb(prepared.area, prepared.suitability.suitability,
                  prepared.geometry, pv::Topology{2, 2}, {}, &stats);
    EXPECT_EQ(plan.module_count(), 4);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(plan, prepared.area, &why)) << why;
    // And it is at least as good as greedy on the same objective.
    GreedyOptions gopt;
    gopt.enable_distance_threshold = false;
    const Floorplan greedy =
        place_greedy(prepared.area, prepared.suitability.suitability,
                     prepared.geometry, pv::Topology{2, 2}, gopt);
    EXPECT_GE(plan_score(plan, prepared.suitability.suitability) + 1e-9,
              plan_score(greedy, prepared.suitability.suitability));
}

TEST(BnbEnergy, MatchesExhaustiveOnTrueObjective) {
    // The ideal-energy bound is a valid relaxation, so place_bnb_energy
    // must find the same optimum as exhaustively enumerating every
    // placement under the full evaluate_floorplan objective.
    const auto s = pvfp::testing::shaded_setup(/*days=*/2, /*w=*/14,
                                               /*h=*/6);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{2, 1};
    const auto suit = Grid2D<double>(14, 6, 1.0);  // objective ignores it
    const PlacementObjective closure = [&](const Floorplan& p) {
        return evaluate_floorplan(p, s.area, s.field, s.model).energy_kwh;
    };
    ExhaustiveStats estats;
    const Floorplan exact =
        place_exhaustive(s.area, suit, g, topo, closure, {}, &estats);
    BnbStats bstats;
    const Floorplan bnb =
        place_bnb_energy(s.area, s.field, s.model, g, topo, {}, {}, &bstats);
    EXPECT_NEAR(closure(bnb), closure(exact), 1e-9);
    EXPECT_NEAR(bstats.best_objective, closure(exact), 1e-9);
    EXPECT_GT(bstats.nodes, 0);
}

TEST(BnbEnergy, MatchesExhaustiveOnOrderSensitiveTopology) {
    // With two parallel strings of two modules, the series-first
    // assignment of a chosen anchor set changes string min-currents and
    // wiring, so this only passes because place_bnb_energy scores every
    // set under the same canonical row-major assignment as
    // place_exhaustive.
    const auto s = pvfp::testing::shaded_setup(/*days=*/2, /*w=*/8,
                                               /*h=*/6);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{2, 2};
    const auto suit = Grid2D<double>(8, 6, 1.0);
    const PlacementObjective closure = [&](const Floorplan& p) {
        return evaluate_floorplan(p, s.area, s.field, s.model).energy_kwh;
    };
    const Floorplan exact = place_exhaustive(s.area, suit, g, topo, closure);
    BnbStats bstats;
    const Floorplan bnb =
        place_bnb_energy(s.area, s.field, s.model, g, topo, {}, {}, &bstats);
    EXPECT_NEAR(closure(bnb), closure(exact), 1e-9);
    EXPECT_NEAR(bstats.best_objective, closure(exact), 1e-9);
}

TEST(BnbEnergy, BoundPrunesShadedBranches) {
    // With the eastern ridge shading a band of anchors, the ideal-energy
    // bound should cut whole subtrees the exhaustive search must visit.
    const auto s = pvfp::testing::shaded_setup(/*days=*/2, /*w=*/20,
                                               /*h=*/6);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{2, 1};
    const auto suit = Grid2D<double>(20, 6, 1.0);
    ExhaustiveStats estats;
    const PlacementObjective closure = [&](const Floorplan& p) {
        return evaluate_floorplan(p, s.area, s.field, s.model).energy_kwh;
    };
    place_exhaustive(s.area, suit, g, topo, closure, {}, &estats);
    BnbStats bstats;
    place_bnb_energy(s.area, s.field, s.model, g, topo, {}, {}, &bstats);
    EXPECT_GT(bstats.pruned, 0);
    EXPECT_LT(bstats.nodes, estats.nodes);
}

TEST(BnbEnergy, Validation) {
    const auto s = pvfp::testing::shaded_setup(/*days=*/2, /*w=*/14,
                                               /*h=*/6);
    // More modules than there are anchors.
    EXPECT_THROW(place_bnb_energy(s.area, s.field, s.model,
                                  PanelGeometry{4, 2}, pv::Topology{10, 5}),
                 Infeasible);
    BnbOptions tiny;
    tiny.max_nodes = 3;
    EXPECT_THROW(place_bnb_energy(s.area, s.field, s.model,
                                  PanelGeometry{4, 2}, pv::Topology{2, 1},
                                  {}, tiny),
                 Infeasible);
}

TEST(Exhaustive, IncrementalAdapterMatchesClosureObjective) {
    // Leaf scoring through make_incremental_objective must pick the same
    // optimum as the full-evaluation closure.
    const auto s = pvfp::testing::shaded_setup(/*days=*/2, /*w=*/14,
                                               /*h=*/6);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{2, 1};
    const auto suit = Grid2D<double>(14, 6, 1.0);
    const PlacementObjective closure = [&](const Floorplan& p) {
        return evaluate_floorplan(p, s.area, s.field, s.model).energy_kwh;
    };
    ExhaustiveStats closure_stats;
    const Floorplan via_closure =
        place_exhaustive(s.area, suit, g, topo, closure, {}, &closure_stats);

    Floorplan seed;
    seed.geometry = g;
    seed.topology = topo;
    seed.modules = {{0, 0}, {4, 0}};
    IncrementalEvaluator evaluator(seed, s.area, s.field, s.model);
    ExhaustiveStats inc_stats;
    const Floorplan via_delta = place_exhaustive(
        s.area, suit, g, topo, make_incremental_objective(evaluator), {},
        &inc_stats);

    EXPECT_NEAR(closure(via_delta), closure(via_closure), 1e-9);
    EXPECT_EQ(inc_stats.leaves, closure_stats.leaves);
    // Every leaf was scored by a delta, not a fresh full pass.
    EXPECT_EQ(evaluator.stats().full_passes, 1);
    EXPECT_GE(evaluator.stats().proposals, inc_stats.leaves - 1);
}

TEST(Annealing, NeverWorseThanInitialAndFeasible) {
    const auto area = flat_area(16, 8);
    const auto s = random_suitability(16, 8, 5);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{2, 2};
    GreedyOptions gopt;
    const Floorplan initial = place_greedy(area, s, g, topo, gopt);
    const PlacementObjective objective = [&](const Floorplan& p) {
        return plan_score(p, s);
    };
    AnnealingOptions aopt;
    aopt.iterations = 1500;
    aopt.seed = 3;
    AnnealingStats stats;
    const Floorplan refined =
        refine_annealing(initial, area, objective, aopt, &stats);
    EXPECT_GE(stats.final_objective, stats.initial_objective - 1e-9);
    EXPECT_GE(objective(refined) + 1e-9, objective(initial));
    std::string why;
    EXPECT_TRUE(floorplan_feasible(refined, area, &why)) << why;
}

TEST(Annealing, ReachesOptimumOnEasyInstance) {
    // One bright block, one module, silly initial position: annealing
    // must find the block.
    const auto area = flat_area(14, 4);
    auto s = Grid2D<double>(14, 4, 1.0);
    for (int y = 0; y < 2; ++y)
        for (int x = 10; x < 14; ++x) s(x, y) = 10.0;
    Floorplan initial;
    initial.geometry = {4, 2};
    initial.topology = {1, 1};
    initial.modules = {{0, 0}};
    const PlacementObjective objective = [&](const Floorplan& p) {
        return plan_score(p, s);
    };
    AnnealingOptions aopt;
    aopt.iterations = 3000;
    aopt.seed = 9;
    const Floorplan refined =
        refine_annealing(initial, area, objective, aopt);
    EXPECT_EQ(refined.modules[0].x, 10);
    EXPECT_EQ(refined.modules[0].y, 0);
}

TEST(Annealing, DeterministicForFixedSeed) {
    const auto area = flat_area(12, 6);
    const auto s = random_suitability(12, 6, 21);
    Floorplan initial;
    initial.geometry = {4, 2};
    initial.topology = {2, 1};
    initial.modules = {{0, 0}, {4, 0}};
    const PlacementObjective objective = [&](const Floorplan& p) {
        return plan_score(p, s);
    };
    AnnealingOptions aopt;
    aopt.iterations = 500;
    aopt.seed = 123;
    const Floorplan a = refine_annealing(initial, area, objective, aopt);
    const Floorplan b = refine_annealing(initial, area, objective, aopt);
    for (int i = 0; i < a.module_count(); ++i)
        EXPECT_EQ(a.modules[static_cast<std::size_t>(i)],
                  b.modules[static_cast<std::size_t>(i)]);
}

TEST(Annealing, Validation) {
    const auto area = flat_area(8, 4);
    Floorplan initial;
    initial.geometry = {4, 2};
    initial.topology = {1, 1};
    initial.modules = {{0, 0}};
    EXPECT_THROW(refine_annealing(initial, area, nullptr), InvalidArgument);
    AnnealingOptions bad;
    bad.cooling = 1.5;
    EXPECT_THROW(refine_annealing(
                     initial, area,
                     [](const Floorplan&) { return 0.0; }, bad),
                 InvalidArgument);
    Floorplan infeasible = initial;
    infeasible.modules = {{7, 0}};  // out of bounds
    EXPECT_THROW(refine_annealing(infeasible, area,
                                  [](const Floorplan&) { return 0.0; }),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::core

/// Tests for the string-rigid placer (the module-freedom ablation's
/// intermediate point between compact block and free greedy).

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/core/string_row_placer.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::flat_area;
using pvfp::testing::masked_area;

double plan_score(const Floorplan& plan, const Grid2D<double>& s) {
    double acc = 0.0;
    for (const auto& m : plan.modules)
        for (int y = m.y; y < m.y + plan.geometry.k2; ++y)
            for (int x = m.x; x < m.x + plan.geometry.k1; ++x)
                acc += s(x, y);
    return acc;
}

TEST(StringRows, RowsAreRigidAndFeasible) {
    const auto area = flat_area(30, 10);
    const Grid2D<double> s(30, 10, 1.0);
    const pv::Topology topo{3, 2};
    const Floorplan plan =
        place_string_rows(area, s, PanelGeometry{4, 2}, topo);
    ASSERT_EQ(plan.module_count(), 6);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(plan, area, &why)) << why;
    for (int j = 0; j < 2; ++j) {
        const auto& first = plan.modules[static_cast<std::size_t>(j * 3)];
        for (int i = 1; i < 3; ++i) {
            const auto& m =
                plan.modules[static_cast<std::size_t>(j * 3 + i)];
            EXPECT_EQ(m.y, first.y);
            EXPECT_EQ(m.x, first.x + 4 * i);
        }
    }
}

TEST(StringRows, RowsLandOnBrightBands) {
    const auto area = flat_area(30, 10);
    auto s = Grid2D<double>(30, 10, 1.0);
    for (int x = 10; x < 22; ++x) s(x, 6) = s(x, 7) = 5.0;  // bright band
    const Floorplan plan = place_string_rows(area, s, PanelGeometry{4, 2},
                                             pv::Topology{3, 1});
    EXPECT_EQ(plan.modules[0].x, 10);
    EXPECT_EQ(plan.modules[0].y, 6);
}

TEST(StringRows, ScoreBetweenBlockAndFreeGreedy) {
    // Two bright bands far apart: the rigid-rows placer can split strings
    // across them (beats one block) but cannot fragment a string (free
    // greedy can do at least as well).
    const auto area = flat_area(40, 12);
    auto s = Grid2D<double>(40, 12, 1.0);
    for (int x = 0; x < 12; ++x) s(x, 0) = s(x, 1) = 4.0;
    for (int x = 28; x < 40; ++x) s(x, 10) = s(x, 11) = 4.0;
    const PanelGeometry g{4, 2};
    const pv::Topology topo{3, 2};

    const auto rows = place_string_rows(area, s, g, topo);
    GreedyOptions gopt;
    gopt.enable_distance_threshold = false;
    const auto free_plan = place_greedy(area, s, g, topo, gopt);
    EXPECT_GE(plan_score(free_plan, s) + 1e-9, plan_score(rows, s));
    // Rigid rows exploit both bands (each 12 cells wide = one 3-module
    // row).
    EXPECT_NEAR(plan_score(rows, s), 2 * 12 * 2 * 4.0, 1e-9);
}

TEST(StringRows, ThrowsWhenNoSpanFits) {
    // Valid area split into 10-cell spans; a 3-module row needs 12.
    Grid2D<unsigned char> mask(21, 2, 1);
    for (int y = 0; y < 2; ++y) mask(10, y) = 0;
    const auto area = masked_area(mask);
    const Grid2D<double> s(21, 2, 1.0);
    EXPECT_THROW(place_string_rows(area, s, PanelGeometry{4, 2},
                                   pv::Topology{3, 1}),
                 Infeasible);
}

TEST(StringRows, AdjacentRowsPreferredOnTies) {
    const auto area = flat_area(12, 12);
    const Grid2D<double> s(12, 12, 1.0);
    const Floorplan plan = place_string_rows(area, s, PanelGeometry{4, 2},
                                             pv::Topology{3, 3});
    // Uniform field: rows stack adjacently thanks to the distance
    // penalty.
    for (int j = 1; j < 3; ++j) {
        const int y_prev = plan.modules[static_cast<std::size_t>((j - 1) * 3)].y;
        const int y_cur = plan.modules[static_cast<std::size_t>(j * 3)].y;
        EXPECT_LE(std::abs(y_cur - y_prev), 2) << "string " << j;
    }
}

TEST(StringRows, Validation) {
    const auto area = flat_area(12, 4);
    const Grid2D<double> wrong(13, 4, 1.0);
    EXPECT_THROW(place_string_rows(area, wrong, PanelGeometry{4, 2},
                                   pv::Topology{1, 1}),
                 InvalidArgument);
    const Grid2D<double> s(12, 4, 1.0);
    StringRowOptions bad;
    bad.row_distance_penalty = -1.0;
    EXPECT_THROW(place_string_rows(area, s, PanelGeometry{4, 2},
                                   pv::Topology{1, 1}, bad),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::core

/// Tests for the suitability metric (paper Section III-C): percentile
/// behaviour on shaded vs unshaded cells, the temperature correction
/// factor, and option handling (mean ablation, strides, daylight-only).

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/suitability.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::coarse_grid;
using pvfp::testing::constant_weather;
using pvfp::testing::flat_area;
using pvfp::testing::flat_field;

TEST(TemperatureCorrection, NormalizedAtReference) {
    const SuitabilityOptions opt;
    EXPECT_NEAR(temperature_correction_factor(25.0, opt), 1.0, 1e-12);
    // Hotter cells are derated, colder ones boosted.
    EXPECT_LT(temperature_correction_factor(60.0, opt), 1.0);
    EXPECT_GT(temperature_correction_factor(0.0, opt), 1.0);
    // Tracks the module's -0.48 %/K.
    EXPECT_NEAR(temperature_correction_factor(35.0, opt), 1.0 - 0.048, 1e-9);
}

TEST(TemperatureCorrection, ClampsAtZero) {
    const SuitabilityOptions opt;
    EXPECT_DOUBLE_EQ(temperature_correction_factor(1000.0, opt), 0.0);
}

TEST(Suitability, UniformFieldGivesUniformMatrix) {
    const TimeGrid grid = coarse_grid(4);
    const auto field = flat_field(6, 4, grid, constant_weather(grid));
    const auto area = flat_area(6, 4);
    const auto result = compute_suitability(field, area);
    const double ref = result.suitability(0, 0);
    EXPECT_GT(ref, 0.0);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 6; ++x)
            EXPECT_DOUBLE_EQ(result.suitability(x, y), ref);
}

TEST(Suitability, InvalidCellsStayZero) {
    const TimeGrid grid = coarse_grid(2);
    const auto field = flat_field(4, 4, grid, constant_weather(grid));
    Grid2D<unsigned char> mask(4, 4, 1);
    mask(2, 2) = 0;
    const auto area = pvfp::testing::masked_area(mask);
    const auto result = compute_suitability(field, area);
    EXPECT_DOUBLE_EQ(result.suitability(2, 2), 0.0);
    EXPECT_GT(result.suitability(0, 0), 0.0);
}

TEST(Suitability, ShadedCellsRankLower) {
    // Real scene: eastern wall shades nearby cells; their p75 and thus
    // suitability must be lower than cells far from the wall.
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const auto& s = prepared.suitability.suitability;
    const auto& area = prepared.area;
    // Rightmost valid column (next to the east wall) vs a central one.
    int right_x = -1;
    int mid_x = area.width / 3;
    for (int x = area.width - 1; x >= 0; --x) {
        if (area.valid(x, area.height / 2)) {
            right_x = x;
            break;
        }
    }
    ASSERT_GE(right_x, 0);
    EXPECT_LT(s(right_x, area.height / 2), s(mid_x, area.height / 2));
}

TEST(Suitability, PercentileMapMatchesFig6Semantics) {
    // g_percentile holds the raw p75 irradiance: for a clear-ish constant
    // sky it must sit between zero and the unshaded plane peak.
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    double peak = 0.0;
    for (long s = 0; s < prepared.field.steps(); ++s)
        peak = std::max(peak, prepared.field.plane_irradiance_unshaded(s));
    const auto& gp = prepared.suitability.g_percentile;
    for (int y = 0; y < prepared.area.height; ++y) {
        for (int x = 0; x < prepared.area.width; ++x) {
            if (!prepared.area.valid(x, y)) continue;
            EXPECT_GE(gp(x, y), 0.0);
            EXPECT_LE(gp(x, y), peak * 1.01);
        }
    }
}

TEST(Suitability, TemperatureCorrectionLowersHotCells) {
    const TimeGrid grid = coarse_grid(3);
    const auto field = flat_field(3, 3, grid,
                                  constant_weather(grid, 700, 600, 150,
                                                   35.0));
    const auto area = flat_area(3, 3);
    SuitabilityOptions with_t;
    with_t.temperature_correction = true;
    SuitabilityOptions without_t;
    without_t.temperature_correction = false;
    const auto a = compute_suitability(field, area, with_t);
    const auto b = compute_suitability(field, area, without_t);
    // Hot climate (35 C + k*G > 25 C): correction strictly lowers S.
    EXPECT_LT(a.suitability(1, 1), b.suitability(1, 1));
    EXPECT_DOUBLE_EQ(b.suitability(1, 1), b.g_percentile(1, 1));
}

TEST(Suitability, MeanAblationDiffersFromPercentile) {
    // Isolate the mean-vs-percentile comparison on the *daylight*
    // distribution, where the paper's skewness argument applies directly:
    // irradiance is skewed toward small values, so mean < p75.
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    SuitabilityOptions p75_opt = prepared.config.suitability;
    p75_opt.daylight_only = true;
    SuitabilityOptions mean_opt = p75_opt;
    mean_opt.use_mean = true;
    const auto p75_result =
        compute_suitability(prepared.field, prepared.area, p75_opt);
    const auto mean_result =
        compute_suitability(prepared.field, prepared.area, mean_opt);
    int lower = 0;
    int total = 0;
    for (int y = 0; y < prepared.area.height; y += 2) {
        for (int x = 0; x < prepared.area.width; x += 2) {
            if (!prepared.area.valid(x, y)) continue;
            ++total;
            if (mean_result.g_percentile(x, y) <
                p75_result.g_percentile(x, y))
                ++lower;
        }
    }
    EXPECT_GT(lower, total * 0.9);
}

TEST(Suitability, StridePreservesCellRanking) {
    // Subsampling the time axis shifts absolute percentiles (fewer hours
    // of the day are represented) but must preserve the *ranking* of
    // cells, which is all the greedy placer consumes.
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    SuitabilityOptions strided = prepared.config.suitability;
    strided.step_stride = 4;
    const auto fast =
        compute_suitability(prepared.field, prepared.area, strided);
    int checked = 0;
    int agreed = 0;
    const auto& full = prepared.suitability.suitability;
    const auto& area = prepared.area;
    for (int y1 = 0; y1 < area.height; y1 += 2) {
        for (int x1 = 0; x1 < area.width; x1 += 3) {
            if (!area.valid(x1, y1)) continue;
            // Compare against a fixed reference cell ensemble.
            for (int x2 = 1; x2 < area.width; x2 += 7) {
                const int y2 = (y1 + 5) % area.height;
                if (!area.valid(x2, y2)) continue;
                const double a = full(x1, y1);
                const double b = full(x2, y2);
                if (a < 1.3 * b) continue;  // only clearly-ordered pairs
                ++checked;
                if (fast.suitability(x1, y1) > fast.suitability(x2, y2))
                    ++agreed;
            }
        }
    }
    ASSERT_GT(checked, 20);
    EXPECT_GT(static_cast<double>(agreed) / checked, 0.9);
}

TEST(Suitability, OptionValidation) {
    const TimeGrid grid = coarse_grid(1);
    const auto field = flat_field(3, 3, grid, constant_weather(grid));
    const auto area = flat_area(3, 3);
    SuitabilityOptions bad;
    bad.percentile = 150.0;
    EXPECT_THROW(compute_suitability(field, area, bad), InvalidArgument);
    bad = {};
    bad.bins = 2;
    EXPECT_THROW(compute_suitability(field, area, bad), InvalidArgument);
    bad = {};
    bad.step_stride = 0;
    EXPECT_THROW(compute_suitability(field, area, bad), InvalidArgument);
    // Mismatched area/field dims.
    const auto wrong_area = flat_area(4, 3);
    EXPECT_THROW(compute_suitability(field, wrong_area, {}),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::core

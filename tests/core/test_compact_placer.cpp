/// Tests for the traditional compact baseline: block geometry, placement
/// on the brightest region, and the two fallback modes.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/compact_placer.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::flat_area;
using pvfp::testing::masked_area;

TEST(Compact, FullBlockShapeAndStringRows) {
    const auto area = flat_area(40, 20);
    const Grid2D<double> s(40, 20, 1.0);
    const PanelGeometry g{4, 2};
    const pv::Topology topo{3, 2};  // block: 12 x 4 cells
    const CompactResult r = place_compact(area, s, g, topo);
    EXPECT_EQ(r.mode, CompactMode::FullBlock);
    ASSERT_EQ(r.plan.module_count(), 6);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(r.plan, area, &why)) << why;
    // Series-first rows: modules 0..2 share y, modules 3..5 share y+k2.
    const int y0 = r.plan.modules[0].y;
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(r.plan.modules[static_cast<std::size_t>(i)].y, y0);
    for (int i = 3; i < 6; ++i)
        EXPECT_EQ(r.plan.modules[static_cast<std::size_t>(i)].y, y0 + 2);
    // Modules within a row are tightly packed.
    EXPECT_EQ(r.plan.modules[1].x, r.plan.modules[0].x + 4);
    EXPECT_EQ(r.plan.modules[2].x, r.plan.modules[1].x + 4);
}

TEST(Compact, BlockLandsOnBrightestWindow) {
    const auto area = flat_area(40, 10);
    Grid2D<double> s(40, 10, 1.0);
    for (int y = 4; y < 8; ++y)
        for (int x = 20; x < 32; ++x) s(x, y) = 3.0;
    const CompactResult r = place_compact(area, s, PanelGeometry{4, 2},
                                          pv::Topology{3, 2});
    EXPECT_EQ(r.plan.modules[0].x, 20);
    EXPECT_EQ(r.plan.modules[0].y, 4);
    EXPECT_NEAR(r.score, 3.0 * 12 * 4, 1e-9);
}

TEST(Compact, FallsBackToStringRowsWhenBlockBlocked) {
    // A horizontal slit splits the area into two 3-cell-tall bands: the
    // 4-cell-tall block cannot fit, but each 12x2 string row can.
    Grid2D<unsigned char> mask(20, 7, 1);
    for (int x = 0; x < 20; ++x) mask(x, 3) = 0;
    const auto area = masked_area(mask);
    const Grid2D<double> s(20, 7, 1.0);
    const CompactResult r = place_compact(area, s, PanelGeometry{4, 2},
                                          pv::Topology{3, 2});
    EXPECT_EQ(r.mode, CompactMode::StringRows);
    ASSERT_EQ(r.plan.module_count(), 6);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(r.plan, area, &why)) << why;
    // Each string is still a contiguous row.
    for (int j = 0; j < 2; ++j) {
        const int base = j * 3;
        const auto& first = r.plan.modules[static_cast<std::size_t>(base)];
        for (int i = 1; i < 3; ++i) {
            const auto& m =
                r.plan.modules[static_cast<std::size_t>(base + i)];
            EXPECT_EQ(m.y, first.y);
            EXPECT_EQ(m.x, first.x + 4 * i);
        }
    }
}

TEST(Compact, FallsBackToPerModuleOnScatteredIslands) {
    // Four disconnected 4x2 islands: even one string row (8x2) cannot
    // fit, so each module is placed individually.
    Grid2D<unsigned char> mask(26, 2, 0);
    for (int k = 0; k < 4; ++k)
        for (int y = 0; y < 2; ++y)
            for (int x = 0; x < 4; ++x) mask(k * 7 + x, y) = 1;
    const auto area = masked_area(mask);
    const Grid2D<double> s(26, 2, 1.0);
    const CompactResult r = place_compact(area, s, PanelGeometry{4, 2},
                                          pv::Topology{2, 2});
    EXPECT_EQ(r.mode, CompactMode::PerModule);
    EXPECT_EQ(r.plan.module_count(), 4);
    std::string why;
    EXPECT_TRUE(floorplan_feasible(r.plan, area, &why)) << why;
}

TEST(Compact, PerModuleKeepsModulesAdjacentWhenPossible) {
    // L-shaped area that cannot host the 2x1 block as a row... actually
    // use a narrow vertical strip: block (8x2) does not fit, string row
    // (8x2) neither; modules stack vertically, adjacent.
    Grid2D<unsigned char> mask(4, 10, 1);
    const auto area = masked_area(mask);
    const Grid2D<double> s(4, 10, 1.0);
    const CompactResult r = place_compact(area, s, PanelGeometry{4, 2},
                                          pv::Topology{2, 1});
    EXPECT_EQ(r.mode, CompactMode::PerModule);
    ASSERT_EQ(r.plan.module_count(), 2);
    EXPECT_LE(center_distance_cells(r.plan.modules[0], r.plan.modules[1],
                                    r.plan.geometry),
              2.0);
}

TEST(Compact, NoFallbackThrowsWhenRequested) {
    Grid2D<unsigned char> mask(20, 7, 1);
    for (int x = 0; x < 20; ++x) mask(x, 3) = 0;
    const auto area = masked_area(mask);
    const Grid2D<double> s(20, 7, 1.0);
    CompactOptions opt;
    opt.allow_fallback = false;
    EXPECT_THROW(place_compact(area, s, PanelGeometry{4, 2},
                               pv::Topology{3, 2}, opt),
                 Infeasible);
}

TEST(Compact, InfeasibleWhenNotEnoughRoomAtAll) {
    const auto area = flat_area(5, 2);
    const Grid2D<double> s(5, 2, 1.0);
    EXPECT_THROW(place_compact(area, s, PanelGeometry{4, 2},
                               pv::Topology{2, 2}),
                 Infeasible);
}

TEST(Compact, InputValidation) {
    const auto area = flat_area(8, 4);
    const Grid2D<double> wrong(9, 4, 1.0);
    EXPECT_THROW(place_compact(area, wrong, PanelGeometry{4, 2},
                               pv::Topology{1, 1}),
                 InvalidArgument);
}

TEST(Compact, DeterministicOnRealScenario) {
    const auto& prepared = pvfp::testing::coarse_toy_scenario();
    const pv::Topology topo{2, 2};
    const CompactResult a =
        place_compact(prepared.area, prepared.suitability.suitability,
                      prepared.geometry, topo);
    const CompactResult b =
        place_compact(prepared.area, prepared.suitability.suitability,
                      prepared.geometry, topo);
    EXPECT_EQ(a.mode, b.mode);
    for (int i = 0; i < a.plan.module_count(); ++i)
        EXPECT_EQ(a.plan.modules[static_cast<std::size_t>(i)],
                  b.plan.modules[static_cast<std::size_t>(i)]);
}

}  // namespace
}  // namespace pvfp::core

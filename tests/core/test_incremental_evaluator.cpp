/// Tests for the IncrementalEvaluator: the delta-evaluation engine of the
/// search placers.  Every committed state must agree with a fresh
/// evaluate_floorplan of the same plan to <= 1e-9 kWh (the contract the
/// integration-level differential harness stresses at scale), proposals
/// must be validated by targeted per-footprint checks only, and the
/// anchor cache must never change results.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "../test_helpers.hpp"
#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

using pvfp::testing::ShadedSetup;


ShadedSetup make_setup(int days = 4) { return pvfp::testing::shaded_setup(days); }

Floorplan base_plan() {
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {2, 2};
    plan.modules = {{0, 0}, {4, 0}, {0, 6}, {12, 6}};
    return plan;
}

/// Committed incremental state vs a fresh full evaluation of the same
/// plan: every kWh field within \p tol, wiring material exact.
void expect_matches_full(const IncrementalEvaluator& ev, const ShadedSetup& s,
                         double tol = 1e-9) {
    const EvaluationResult full = evaluate_floorplan(
        ev.plan(), s.area, s.field, s.model, ev.options());
    const EvaluationResult inc = ev.result();
    EXPECT_NEAR(inc.energy_kwh, full.energy_kwh, tol);
    EXPECT_NEAR(ev.energy_kwh(), full.energy_kwh, tol);
    EXPECT_NEAR(inc.ideal_energy_kwh, full.ideal_energy_kwh, tol);
    EXPECT_NEAR(inc.mismatch_loss_kwh, full.mismatch_loss_kwh, tol);
    EXPECT_NEAR(inc.wiring_loss_kwh, full.wiring_loss_kwh, tol);
    EXPECT_NEAR(inc.extra_cable_m, full.extra_cable_m, 1e-12);
    EXPECT_NEAR(inc.wiring_cost_usd, full.wiring_cost_usd, 1e-12);
    ASSERT_EQ(inc.strings.size(), full.strings.size());
    for (std::size_t j = 0; j < full.strings.size(); ++j) {
        EXPECT_NEAR(inc.strings[j].energy_kwh, full.strings[j].energy_kwh,
                    tol);
        EXPECT_NEAR(inc.strings[j].wiring_loss_kwh,
                    full.strings[j].wiring_loss_kwh, tol);
        EXPECT_NEAR(inc.strings[j].extra_cable_m,
                    full.strings[j].extra_cable_m, 1e-12);
    }
}

TEST(IncrementalEvaluator, FullPassMatchesEvaluateFloorplan) {
    const ShadedSetup s = make_setup();
    const IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    expect_matches_full(ev, s);
    EXPECT_EQ(ev.stats().full_passes, 1);
    EXPECT_GT(ev.energy_kwh(), 0.0);
}

TEST(IncrementalEvaluator, MoveCommitMatchesFull) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    const double before = ev.energy_kwh();
    ASSERT_TRUE(ev.move_feasible(1, {16, 0}));
    const double proposed = ev.delta_move(1, {16, 0});
    // The proposal is not visible until committed.
    EXPECT_EQ(ev.energy_kwh(), before);
    EXPECT_EQ(ev.plan().modules[1], (ModulePlacement{4, 0}));
    ev.commit();
    EXPECT_EQ(ev.plan().modules[1], (ModulePlacement{16, 0}));
    EXPECT_EQ(ev.energy_kwh(), proposed);
    expect_matches_full(ev, s);
}

TEST(IncrementalEvaluator, SwapCommitMatchesFull) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    const auto computed_before = ev.stats().series_computed;
    const double proposed = ev.delta_swap(0, 3);  // across strings
    ev.commit();
    EXPECT_EQ(ev.energy_kwh(), proposed);
    EXPECT_EQ(ev.plan().modules[0], (ModulePlacement{12, 6}));
    EXPECT_EQ(ev.plan().modules[3], (ModulePlacement{0, 0}));
    // A swap reuses both cached series: no new field work.
    EXPECT_EQ(ev.stats().series_computed, computed_before);
    expect_matches_full(ev, s);

    ev.delta_swap(0, 1);  // within one string
    ev.commit();
    expect_matches_full(ev, s);
}

TEST(IncrementalEvaluator, RollbackRestoresCommittedState) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    const double before = ev.energy_kwh();
    const Floorplan plan_before = ev.plan();
    ev.delta_move(2, {16, 6});
    ev.rollback();
    EXPECT_EQ(ev.energy_kwh(), before);
    EXPECT_EQ(ev.plan().modules, plan_before.modules);
    expect_matches_full(ev, s);
    // The evaluator accepts a fresh proposal after a rollback.
    ev.delta_move(2, {16, 6});
    ev.commit();
    expect_matches_full(ev, s);
}

TEST(IncrementalEvaluator, DeltaUpdateMultiMoveMatchesFull) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    // Module 0 takes module 2's exact spot while module 2 vacates it: the
    // intermediate state would overlap if applied one move at a time, but
    // final-state feasibility makes this a single legal delta.
    const std::vector<std::pair<int, ModulePlacement>> moves = {
        {0, {0, 6}}, {2, {16, 0}}};
    ev.delta_update(moves);
    ev.commit();
    EXPECT_EQ(ev.plan().modules[0], (ModulePlacement{0, 6}));
    EXPECT_EQ(ev.plan().modules[2], (ModulePlacement{16, 0}));
    expect_matches_full(ev, s);
}

TEST(IncrementalEvaluator, NoOpProposalKeepsEnergy) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    const double before = ev.energy_kwh();
    const double proposed = ev.delta_move(0, ev.plan().modules[0]);
    EXPECT_EQ(proposed, before);
    ev.commit();
    EXPECT_EQ(ev.energy_kwh(), before);
    expect_matches_full(ev, s);
}

TEST(IncrementalEvaluator, TargetedRejectionWithoutFullPass) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    // Out of the area: footprint leaves the window.
    EXPECT_FALSE(ev.move_feasible(0, {22, 0}));
    EXPECT_THROW(ev.delta_move(0, {22, 0}), InvalidArgument);
    // Onto the chimney keep-out cells.
    EXPECT_FALSE(ev.move_feasible(0, {9, 4}));
    EXPECT_THROW(ev.delta_move(0, {9, 4}), InvalidArgument);
    // Onto another module.
    EXPECT_FALSE(ev.move_feasible(0, {4, 0}));
    EXPECT_THROW(ev.delta_move(0, {4, 0}), InvalidArgument);
    // Rejections ran the targeted checks only: the one constructor pass
    // remains the only full-plan evaluation, no proposal is pending, and
    // the committed state is untouched.
    EXPECT_EQ(ev.stats().full_passes, 1);
    EXPECT_EQ(ev.stats().rejected, 3);
    EXPECT_FALSE(ev.has_pending());
    expect_matches_full(ev, s);
}

TEST(IncrementalEvaluator, PendingDiscipline) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    EXPECT_THROW(ev.commit(), InvalidArgument);
    EXPECT_THROW(ev.rollback(), InvalidArgument);
    ev.delta_move(0, {16, 0});
    EXPECT_TRUE(ev.has_pending());
    EXPECT_THROW(ev.delta_move(1, {16, 6}), InvalidArgument);
    EXPECT_THROW(ev.delta_swap(0, 1), InvalidArgument);
    ev.rollback();
    EXPECT_FALSE(ev.has_pending());
}

TEST(IncrementalEvaluator, OptionsVariantsMatchFull) {
    const ShadedSetup s = make_setup();
    std::vector<EvaluationOptions> variants(4);
    variants[1].module_irradiance = ModuleIrradiance::WorstCell;
    variants[2].module_irradiance = ModuleIrradiance::AnchorCell;
    variants[2].step_stride = 5;  // 96 steps: exercises the trailing clamp
    variants[3].include_wiring_loss = false;
    variants[3].step_stride = 3;
    for (const auto& options : variants) {
        IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model,
                                options);
        expect_matches_full(ev, s);
        ev.delta_move(3, {16, 0});
        ev.commit();
        ev.delta_swap(1, 2);
        ev.commit();
        expect_matches_full(ev, s);
    }
}

TEST(IncrementalEvaluator, AnchorCacheReuseAndEviction) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    const auto computed_after_ctor = ev.stats().series_computed;
    ev.delta_move(0, {16, 0});
    ev.commit();
    const auto computed_after_move = ev.stats().series_computed;
    EXPECT_EQ(computed_after_move, computed_after_ctor + 1);
    // Moving back revisits a cached anchor: reused, not recomputed.
    ev.delta_move(0, {0, 0});
    ev.commit();
    EXPECT_EQ(ev.stats().series_computed, computed_after_move);
    EXPECT_GT(ev.stats().series_reused, 0);
    expect_matches_full(ev, s);

    // A capacity-1 cache evicts on every computation but must never
    // change results.
    IncrementalEvaluator tiny(base_plan(), s.area, s.field, s.model, {}, 1);
    tiny.delta_move(0, {16, 0});
    tiny.commit();
    tiny.delta_move(0, {0, 0});
    tiny.commit();
    tiny.delta_swap(0, 2);
    tiny.commit();
    expect_matches_full(tiny, s);
}

TEST(IncrementalEvaluator, MakeIncrementalObjectiveMatchesClosure) {
    const ShadedSetup s = make_setup();
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    const PlacementObjective incremental = make_incremental_objective(ev);
    const PlacementObjective closure = [&](const Floorplan& p) {
        return evaluate_floorplan(p, s.area, s.field, s.model).energy_kwh;
    };
    std::vector<Floorplan> candidates;
    candidates.push_back(base_plan());
    candidates.push_back(base_plan());
    candidates.back().modules[1] = {16, 0};
    candidates.push_back(base_plan());
    std::swap(candidates.back().modules[0], candidates.back().modules[3]);
    candidates.push_back(base_plan());
    candidates.back().modules = {{16, 0}, {4, 0}, {4, 6}, {16, 6}};
    for (const Floorplan& p : candidates)
        EXPECT_NEAR(incremental(p), closure(p), 1e-9);
    // The adapter leaves the evaluator committed at the last candidate.
    EXPECT_EQ(ev.plan().modules, candidates.back().modules);
}

TEST(IncrementalEvaluator, IdealAnchorEnergiesBoundTheObjective) {
    const ShadedSetup s = make_setup();
    const Floorplan plan = base_plan();
    const auto ideals = ideal_anchor_energies(plan.modules, plan.geometry,
                                              s.field, s.model);
    ASSERT_EQ(ideals.size(), plan.modules.size());
    double ideal_sum = 0.0;
    for (double e : ideals) {
        EXPECT_GT(e, 0.0);
        ideal_sum += e;
    }
    const EvaluationResult full =
        evaluate_floorplan(plan, s.area, s.field, s.model);
    // The separable bound dominates the net energy and reproduces the
    // evaluator's ideal (per-module MPPT) total.
    EXPECT_GE(ideal_sum + 1e-9, full.energy_kwh);
    EXPECT_NEAR(ideal_sum, full.ideal_energy_kwh, 1e-9);
}

TEST(IncrementalEvaluator, Validation) {
    const ShadedSetup s = make_setup();
    Floorplan bad = base_plan();
    bad.modules[0] = {9, 4};  // chimney keep-out
    EXPECT_THROW(IncrementalEvaluator(bad, s.area, s.field, s.model),
                 InvalidArgument);
    Floorplan overlapping = base_plan();
    overlapping.modules[1] = {2, 0};
    EXPECT_THROW(
        IncrementalEvaluator(overlapping, s.area, s.field, s.model),
        InvalidArgument);
    EvaluationOptions bad_stride;
    bad_stride.step_stride = 0;
    EXPECT_THROW(
        IncrementalEvaluator(base_plan(), s.area, s.field, s.model,
                             bad_stride),
        InvalidArgument);
    IncrementalEvaluator ev(base_plan(), s.area, s.field, s.model);
    EXPECT_THROW(ev.delta_move(-1, {0, 0}), InvalidArgument);
    EXPECT_THROW(ev.delta_move(4, {0, 0}), InvalidArgument);
    EXPECT_THROW(ev.delta_swap(0, 4), InvalidArgument);
}

}  // namespace
}  // namespace pvfp::core

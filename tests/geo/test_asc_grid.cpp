/// \file test_asc_grid.cpp
/// The hardened .asc parser: CRLF, header-key case, the xllcenter /
/// yllcenter variants (each axis independently), duplicate-key
/// rejection, and the header-only parse used by the GIS tile index.

#include <gtest/gtest.h>

#include <sstream>

#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::geo {
namespace {

constexpr const char* kPlain =
    "ncols 3\n"
    "nrows 2\n"
    "xllcorner 10.0\n"
    "yllcorner 20.0\n"
    "cellsize 0.5\n"
    "NODATA_value -9999\n"
    "1 2 3\n"
    "4 5 6\n";

TEST(AscGrid, ParsesPlainLf) {
    std::istringstream in(kPlain);
    const Raster r = read_asc_grid(in);
    EXPECT_EQ(r.width(), 3);
    EXPECT_EQ(r.height(), 2);
    EXPECT_DOUBLE_EQ(r.cell_size(), 0.5);
    EXPECT_DOUBLE_EQ(r.origin_x(), 10.0);
    EXPECT_DOUBLE_EQ(r.origin_y(), 21.0);  // yll + nrows * cellsize
    EXPECT_DOUBLE_EQ(r(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(r(2, 1), 6.0);
}

TEST(AscGrid, AcceptsCrlfLineEndings) {
    std::string crlf(kPlain);
    std::string with_cr;
    for (const char c : crlf) {
        if (c == '\n') with_cr += "\r\n";
        else with_cr += c;
    }
    std::istringstream in(with_cr);
    const Raster r = read_asc_grid(in);
    EXPECT_EQ(r.width(), 3);
    EXPECT_EQ(r.height(), 2);
    EXPECT_DOUBLE_EQ(r(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(r(2, 1), 6.0);

    std::istringstream lf(kPlain);
    EXPECT_EQ(read_asc_grid(lf), r);
}

TEST(AscGrid, HeaderKeysAreCaseInsensitive) {
    std::istringstream in(
        "NCOLS 2\nNrows 1\nXLLCorner 1.0\nYllCorner 2.0\nCELLSIZE 1.0\n"
        "nodata_VALUE -1\n"
        "7 8\n");
    const Raster r = read_asc_grid(in);
    EXPECT_EQ(r.width(), 2);
    EXPECT_EQ(r.height(), 1);
    EXPECT_DOUBLE_EQ(r.nodata(), -1.0);
    EXPECT_DOUBLE_EQ(r(1, 0), 8.0);
}

TEST(AscGrid, XllcenterShiftsOnlyTheXAxis) {
    std::istringstream in(
        "ncols 2\nnrows 2\nxllcenter 10.0\nyllcorner 20.0\ncellsize 1.0\n"
        "1 2\n3 4\n");
    const Raster r = read_asc_grid(in);
    // Center of the lower-left cell at x=10 -> west edge at 9.5.
    EXPECT_DOUBLE_EQ(r.origin_x(), 9.5);
    // y axis used the corner convention: north edge at 20 + 2*1.
    EXPECT_DOUBLE_EQ(r.origin_y(), 22.0);
}

TEST(AscGrid, YllcenterShiftsOnlyTheYAxis) {
    std::istringstream in(
        "ncols 2\nnrows 2\nxllcorner 10.0\nyllcenter 20.0\ncellsize 1.0\n"
        "1 2\n3 4\n");
    const Raster r = read_asc_grid(in);
    EXPECT_DOUBLE_EQ(r.origin_x(), 10.0);
    // Lower-left cell *center* at y=20 -> south edge 19.5, north 21.5.
    EXPECT_DOUBLE_EQ(r.origin_y(), 21.5);
}

TEST(AscGrid, RejectsDuplicateHeaderKeys) {
    std::istringstream dup_ncols(
        "ncols 2\nncols 2\nnrows 1\ncellsize 1.0\n1 2\n");
    EXPECT_THROW(read_asc_grid(dup_ncols), IoError);

    // Mixed-case duplicates are still duplicates.
    std::istringstream dup_case(
        "ncols 2\nNCOLS 2\nnrows 1\ncellsize 1.0\n1 2\n");
    EXPECT_THROW(read_asc_grid(dup_case), IoError);

    // Corner + center of the same axis is a duplicate too.
    std::istringstream dup_xll(
        "ncols 2\nnrows 1\nxllcorner 0\nxllcenter 0\ncellsize 1.0\n1 2\n");
    EXPECT_THROW(read_asc_grid(dup_xll), IoError);

    std::istringstream dup_nodata(
        "ncols 2\nnrows 1\ncellsize 1.0\nNODATA_value -1\nnodata_value -2\n"
        "1 2\n");
    EXPECT_THROW(read_asc_grid(dup_nodata), IoError);
}

TEST(AscGrid, HeaderOnlyParseLeavesStreamAtData) {
    std::istringstream in(kPlain);
    const AscHeader h = read_asc_header(in);
    EXPECT_EQ(h.ncols, 3);
    EXPECT_EQ(h.nrows, 2);
    EXPECT_DOUBLE_EQ(h.xllcorner, 10.0);
    EXPECT_DOUBLE_EQ(h.yllcorner, 20.0);
    EXPECT_DOUBLE_EQ(h.cellsize, 0.5);
    EXPECT_DOUBLE_EQ(h.nodata, -9999.0);
    EXPECT_DOUBLE_EQ(h.x_max(), 11.5);
    EXPECT_DOUBLE_EQ(h.y_max(), 21.0);
    double first = 0.0;
    ASSERT_TRUE(static_cast<bool>(in >> first));
    EXPECT_DOUBLE_EQ(first, 1.0);
}

TEST(AscGrid, HeaderNormalizesCenterVariants) {
    std::istringstream in(
        "ncols 4\nnrows 3\nxllcenter 1.0\nyllcenter 2.0\ncellsize 2.0\n"
        "0 0 0 0\n0 0 0 0\n0 0 0 0\n");
    const AscHeader h = read_asc_header(in);
    EXPECT_DOUBLE_EQ(h.xllcorner, 0.0);
    EXPECT_DOUBLE_EQ(h.yllcorner, 1.0);
}

TEST(AscGrid, MissingMandatoryKeysStillRejected) {
    std::istringstream no_cell("ncols 2\nnrows 1\n1 2\n");
    EXPECT_THROW(read_asc_grid(no_cell), IoError);
    std::istringstream no_dims("cellsize 1.0\n1 2\n");
    EXPECT_THROW(read_asc_grid(no_dims), IoError);
    std::istringstream trunc("ncols 2\nnrows 2\ncellsize 1.0\n1 2 3\n");
    EXPECT_THROW(read_asc_grid(trunc), IoError);
}

}  // namespace
}  // namespace pvfp::geo

/// Tests for the horizon map and shadow engine: closed-form wall shadows,
/// agreement between the O(1) horizon path and the brute-force marcher,
/// and sky-view factors.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/geo/shadow.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {
namespace {

/// Flat ground with a wall: the canonical closed-form shadow scene.
/// Wall of height \p h at local x in [wall_x, wall_x+thickness), spanning
/// the full y extent.
Raster wall_scene(double extent, double cell, double wall_x, double h,
                  double thickness = 0.6) {
    SceneBuilder scene(extent, extent);
    scene.add_building({wall_x, 0.0, thickness, extent, h});
    return scene.rasterize(cell);
}

TEST(Horizon, FlatGroundHasZeroHorizonAndUnitSvf) {
    Raster dsm(30, 30, 0.5, 1.0);
    HorizonOptions opt;
    opt.azimuth_sectors = 24;
    HorizonMap map(dsm, 5, 5, 20, 20, opt);
    for (int s = 0; s < 24; ++s) EXPECT_DOUBLE_EQ(map.horizon(10, 10, s), 0.0);
    EXPECT_DOUBLE_EQ(map.sky_view_factor(10, 10), 1.0);
    EXPECT_FALSE(map.is_shaded(10, 10, deg2rad(180.0), deg2rad(5.0)));
    EXPECT_TRUE(map.is_shaded(10, 10, deg2rad(180.0), -0.01));  // night
}

TEST(Horizon, WallElevationAngleMatchesClosedForm) {
    // Wall 4 m tall at x = 10 m; observer on the ground 5 m west of it.
    const Raster dsm = wall_scene(20.0, 0.2, 10.0, 4.0);
    const int obs_x = 25;  // local x = 5.1 m
    const int obs_y = 50;
    const double obs_lx = dsm.local_x(obs_x);
    // Looking east (azimuth 90 deg) the horizon is the wall top.
    const double horizon =
        brute_force_horizon(dsm, obs_x, obs_y, deg2rad(90.0));
    const double dist = 10.0 - obs_lx;
    const double expected = std::atan2(4.0 - 0.05, dist);  // observer offset
    EXPECT_NEAR(horizon, expected, deg2rad(2.0));
    // Looking west: nothing but flat ground.
    EXPECT_NEAR(brute_force_horizon(dsm, obs_x, obs_y, deg2rad(270.0)), 0.0,
                1e-12);
}

TEST(Horizon, ShadedIffSunBelowWallTop) {
    const Raster dsm = wall_scene(20.0, 0.2, 10.0, 4.0);
    HorizonOptions opt;
    opt.azimuth_sectors = 72;
    opt.step_growth = 1.0;  // exact marching for this test
    HorizonMap map(dsm, 0, 0, dsm.width(), dsm.height(), opt);
    const int obs_x = 25;
    const int obs_y = 50;
    const double wall_angle = std::atan2(4.0, 10.0 - dsm.local_x(obs_x));
    EXPECT_TRUE(map.is_shaded(obs_x, obs_y, deg2rad(90.0),
                              wall_angle - deg2rad(3.0)));
    EXPECT_FALSE(map.is_shaded(obs_x, obs_y, deg2rad(90.0),
                               wall_angle + deg2rad(3.0)));
    // Same sun elevation from the west: unshaded.
    EXPECT_FALSE(map.is_shaded(obs_x, obs_y, deg2rad(270.0),
                               wall_angle - deg2rad(3.0)));
}

TEST(Horizon, InterpolatedHorizonMatchesBruteForceBetweenSectors) {
    const Raster dsm = wall_scene(16.0, 0.4, 9.0, 3.0);
    HorizonOptions opt;
    opt.azimuth_sectors = 36;  // 10 deg sectors: interpolation matters
    opt.step_growth = 1.0;
    HorizonMap map(dsm, 0, 0, dsm.width(), dsm.height(), opt);
    const int obs_x = 10;
    const int obs_y = 20;
    for (double az_deg = 45.0; az_deg <= 135.0; az_deg += 7.0) {
        const double exact =
            brute_force_horizon(dsm, obs_x, obs_y, deg2rad(az_deg), opt);
        const double interp = map.horizon_at(obs_x, obs_y, deg2rad(az_deg));
        EXPECT_NEAR(interp, exact, deg2rad(6.0)) << "az=" << az_deg;
    }
}

TEST(Horizon, GeometricStepGrowthStaysAccurate) {
    const Raster dsm = wall_scene(24.0, 0.2, 16.0, 5.0);
    HorizonOptions exact_opt;
    exact_opt.step_growth = 1.0;
    HorizonOptions fast_opt;  // default growth 1.03
    const int obs_x = 10;
    const int obs_y = 60;
    const double exact =
        brute_force_horizon(dsm, obs_x, obs_y, deg2rad(90.0), exact_opt);
    HorizonMap fast(dsm, obs_x, obs_y, 1, 1, fast_opt);
    EXPECT_NEAR(fast.horizon_at(0, 0, deg2rad(90.0)), exact, deg2rad(1.5));
}

TEST(Horizon, SkyViewFactorDropsNearWall) {
    const Raster dsm = wall_scene(20.0, 0.4, 10.0, 6.0);
    HorizonOptions opt;
    opt.azimuth_sectors = 36;
    HorizonMap map(dsm, 0, 0, dsm.width(), dsm.height(), opt);
    const int y = dsm.height() / 2;
    const double svf_near = map.sky_view_factor(22, y);  // ~1.2 m west of wall
    const double svf_far = map.sky_view_factor(3, y);    // far west
    EXPECT_LT(svf_near, svf_far);
    EXPECT_GT(svf_near, 0.3);
    EXPECT_LE(svf_far, 1.0);
    EXPECT_GT(svf_far, 0.9);
}

TEST(Horizon, RejectsBadWindowsAndParameters) {
    Raster dsm(10, 10, 1.0);
    EXPECT_THROW(HorizonMap(dsm, 0, 0, 11, 5, {}), InvalidArgument);
    EXPECT_THROW(HorizonMap(dsm, -1, 0, 5, 5, {}), InvalidArgument);
    HorizonOptions bad;
    bad.azimuth_sectors = 2;
    EXPECT_THROW(HorizonMap(dsm, 0, 0, 5, 5, bad), InvalidArgument);
    bad = {};
    bad.max_distance = -1.0;
    EXPECT_THROW(HorizonMap(dsm, 0, 0, 5, 5, bad), InvalidArgument);
    HorizonMap ok(dsm, 0, 0, 5, 5, {});
    EXPECT_THROW(ok.horizon(5, 0, 0), InvalidArgument);
    EXPECT_THROW(ok.horizon(0, 0, 99), InvalidArgument);
    EXPECT_THROW(brute_force_horizon(dsm, 20, 0, 0.0), InvalidArgument);
}

TEST(Shadow, MapMatchesPerCellQueries) {
    const Raster dsm = wall_scene(12.0, 0.4, 8.0, 3.0);
    const double az = deg2rad(90.0);
    const double el = deg2rad(15.0);
    const auto map = shadow_map(dsm, az, el);
    for (int y = 0; y < dsm.height(); y += 4) {
        for (int x = 0; x < dsm.width(); x += 4) {
            EXPECT_EQ(map(x, y) != 0,
                      is_shaded_brute_force(dsm, x, y, az, el))
                << x << "," << y;
        }
    }
}

TEST(Shadow, ShadowLengthMatchesSunElevation) {
    // Sun from the east at elevation e: a wall of height h shades ground
    // west of it for a length ~ h / tan(e).
    const double h = 4.0;
    const Raster dsm = wall_scene(30.0, 0.2, 20.0, h);
    const double el = deg2rad(20.0);
    const auto map = shadow_map(dsm, deg2rad(90.0), el);
    const double expected_len = h / std::tan(el);  // ~11 m
    const int y = dsm.height() / 2;
    // A point well inside the expected shadow:
    const int x_shaded = dsm.col_of(20.0 - expected_len * 0.8);
    // A point clearly beyond it:
    const int x_lit = dsm.col_of(20.0 - expected_len * 1.3);
    EXPECT_EQ(map(x_shaded, y), 1);
    EXPECT_EQ(map(x_lit, y), 0);
}

TEST(Shadow, SunBelowHorizonShadesEverything) {
    Raster dsm(5, 5, 1.0, 0.0);
    const auto map = shadow_map(dsm, 0.0, -0.1);
    for (const auto v : map.data()) EXPECT_EQ(v, 1);
}

TEST(Shadow, FractionMapAveragesPositions) {
    const Raster dsm = wall_scene(12.0, 0.4, 8.0, 4.0);
    std::vector<SunPosition> suns{
        {deg2rad(90.0), deg2rad(10.0)},   // east, low: long west shadow
        {deg2rad(270.0), deg2rad(10.0)},  // west, low: other side
        {deg2rad(180.0), -0.05},          // night: skipped
    };
    const auto frac = shading_fraction_map(dsm, suns);
    const int y = dsm.height() / 2;
    // A cell just west of the wall is shaded in exactly one of the two
    // daylight positions.
    EXPECT_NEAR(frac(17, y), 0.5, 1e-9);
    EXPECT_THROW(
        shading_fraction_map(dsm, {{0.0, -0.1}}),
        InvalidArgument);
}

}  // namespace
}  // namespace pvfp::geo

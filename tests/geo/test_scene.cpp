/// Tests for the procedural scene builder: analytic heights of each
/// primitive and consistency of the rasterized DSM with the closed form.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/geo/scene.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {
namespace {

TEST(Scene, GroundOnlyScene) {
    SceneBuilder scene(10.0, 10.0, 2.0);
    EXPECT_DOUBLE_EQ(scene.surface_height(5.0, 5.0), 2.0);
    const Raster dsm = scene.rasterize(0.5);
    EXPECT_EQ(dsm.width(), 20);
    EXPECT_EQ(dsm.height(), 20);
    EXPECT_DOUBLE_EQ(dsm(10, 10), 2.0);
}

TEST(Scene, RejectsBadParameters) {
    EXPECT_THROW(SceneBuilder(0.0, 5.0), InvalidArgument);
    SceneBuilder scene(10.0, 10.0);
    MonopitchRoof bad;
    bad.w = -1.0;
    EXPECT_THROW(scene.add_roof(bad), InvalidArgument);
    bad.w = 5.0;
    bad.tilt_deg = 95.0;
    EXPECT_THROW(scene.add_roof(bad), InvalidArgument);
    EXPECT_THROW(scene.rasterize(0.0), InvalidArgument);
    EXPECT_THROW(scene.roof(0), InvalidArgument);
}

TEST(Scene, SouthFacingMonopitchHeights) {
    SceneBuilder scene(20.0, 20.0);
    MonopitchRoof roof;
    roof.x = 5.0;
    roof.y = 5.0;
    roof.w = 10.0;
    roof.d = 6.0;
    roof.eave_height = 3.0;
    roof.tilt_deg = 30.0;
    roof.azimuth_deg = 180.0;  // downslope toward south (+y local)
    const int idx = scene.add_roof(roof);

    // The southern edge (y = 11) is the eave; height rises northward.
    const double rise = std::tan(deg2rad(30.0));
    EXPECT_NEAR(scene.roof_plane_height(idx, 10.0, 11.0), 3.0, 1e-9);
    EXPECT_NEAR(scene.roof_plane_height(idx, 10.0, 5.0), 3.0 + 6.0 * rise,
                1e-9);
    // Same height along the east-west direction (no cross slope).
    EXPECT_NEAR(scene.roof_plane_height(idx, 6.0, 8.0),
                scene.roof_plane_height(idx, 14.0, 8.0), 1e-9);
    // Outside the rect the surface falls back to ground.
    EXPECT_DOUBLE_EQ(scene.surface_height(1.0, 1.0), 0.0);
    EXPECT_TRUE(scene.inside_roof(idx, 10.0, 8.0));
    EXPECT_FALSE(scene.inside_roof(idx, 4.9, 8.0));
}

TEST(Scene, WestFacingRoofSlopesAlongX) {
    SceneBuilder scene(20.0, 20.0);
    MonopitchRoof roof;
    roof.x = 2.0;
    roof.y = 2.0;
    roof.w = 8.0;
    roof.d = 4.0;
    roof.eave_height = 2.0;
    roof.tilt_deg = 20.0;
    roof.azimuth_deg = 270.0;  // downslope toward west (-x local)
    const int idx = scene.add_roof(roof);
    const double rise = std::tan(deg2rad(20.0));
    EXPECT_NEAR(scene.roof_plane_height(idx, 2.0, 4.0), 2.0, 1e-9);
    EXPECT_NEAR(scene.roof_plane_height(idx, 10.0, 4.0), 2.0 + 8.0 * rise,
                1e-9);
}

TEST(Scene, GableRoofSymmetricAboutRidge) {
    SceneBuilder scene(30.0, 30.0);
    const int south = scene.add_gable_roof("g", 5.0, 5.0, 10.0, 8.0, 3.0,
                                           30.0);
    const int north = south + 1;
    // Ridge at plan mid-depth y = 9: both planes peak there.
    const double ridge_s = scene.roof_plane_height(south, 10.0, 9.0);
    const double ridge_n = scene.roof_plane_height(north, 10.0, 9.0);
    EXPECT_NEAR(ridge_s, ridge_n, 1e-9);
    // Eaves at the outer edges are at the eave height.
    EXPECT_NEAR(scene.roof_plane_height(south, 10.0, 13.0), 3.0, 1e-9);
    EXPECT_NEAR(scene.roof_plane_height(north, 10.0, 5.0), 3.0, 1e-9);
    // Surface is symmetric about the ridge.
    EXPECT_NEAR(scene.surface_height(10.0, 7.0),
                scene.surface_height(10.0, 11.0), 1e-9);
}

TEST(Scene, BoxReferencesGroundOrSurface) {
    SceneBuilder scene(20.0, 20.0);
    MonopitchRoof roof;
    roof.x = 0.0;
    roof.y = 0.0;
    roof.w = 20.0;
    roof.d = 10.0;
    roof.eave_height = 4.0;
    roof.tilt_deg = 0.0;  // flat roof for easy numbers
    scene.add_roof(roof);
    scene.add_box({2.0, 2.0, 1.0, 1.0, 1.5, HeightRef::Surface});
    scene.add_box({5.0, 2.0, 1.0, 1.0, 1.5, HeightRef::Ground});
    EXPECT_DOUBLE_EQ(scene.surface_height(2.5, 2.5), 5.5);  // roof + 1.5
    // Ground-referenced box is below the roof: roof wins.
    EXPECT_DOUBLE_EQ(scene.surface_height(5.5, 2.5), 4.0);
    // Outside boxes: plain roof.
    EXPECT_DOUBLE_EQ(scene.surface_height(10.0, 5.0), 4.0);
}

TEST(Scene, PipeRaisesNarrowBand) {
    SceneBuilder scene(20.0, 10.0);
    scene.add_pipe({2.0, 5.0, 18.0, 5.0, 0.6, 0.4});
    EXPECT_DOUBLE_EQ(scene.surface_height(10.0, 5.0), 0.4);
    EXPECT_DOUBLE_EQ(scene.surface_height(10.0, 5.29), 0.4);  // within halfwidth
    EXPECT_DOUBLE_EQ(scene.surface_height(10.0, 5.5), 0.0);   // outside
    // Beyond the endpoints the band ends.
    EXPECT_DOUBLE_EQ(scene.surface_height(19.0, 5.0), 0.0);
}

TEST(Scene, TreeConeProfile) {
    SceneBuilder scene(20.0, 20.0);
    scene.add_tree({10.0, 10.0, 3.0, 9.0});
    EXPECT_DOUBLE_EQ(scene.surface_height(10.0, 10.0), 9.0);  // apex
    EXPECT_NEAR(scene.surface_height(11.5, 10.0), 4.5, 1e-9);  // half radius
    EXPECT_DOUBLE_EQ(scene.surface_height(13.1, 10.0), 0.0);   // outside
}

TEST(Scene, BuildingFlatTop) {
    SceneBuilder scene(20.0, 20.0);
    scene.add_building({5.0, 5.0, 4.0, 4.0, 7.0});
    EXPECT_DOUBLE_EQ(scene.surface_height(7.0, 7.0), 7.0);
    EXPECT_DOUBLE_EQ(scene.surface_height(4.9, 7.0), 0.0);
}

TEST(Scene, RasterMatchesAnalyticSurface) {
    SceneBuilder scene(15.0, 12.0, 0.5);
    MonopitchRoof roof;
    roof.x = 2.0;
    roof.y = 2.0;
    roof.w = 10.0;
    roof.d = 6.0;
    roof.eave_height = 3.0;
    roof.tilt_deg = 26.0;
    roof.azimuth_deg = 195.0;  // oblique: exercises the general plane path
    scene.add_roof(roof);
    scene.add_box({4.0, 4.0, 1.0, 1.0, 1.0, HeightRef::Surface});
    scene.add_tree({13.0, 10.0, 1.5, 6.0});

    const Raster dsm = scene.rasterize(0.25);
    for (int y = 0; y < dsm.height(); y += 3) {
        for (int x = 0; x < dsm.width(); x += 3) {
            EXPECT_NEAR(dsm(x, y),
                        scene.surface_height(dsm.local_x(x), dsm.local_y(y)),
                        1e-12);
        }
    }
}

TEST(Scene, ObliqueAzimuthProducesCrossSlope) {
    SceneBuilder scene(30.0, 30.0);
    MonopitchRoof roof;
    roof.x = 5.0;
    roof.y = 5.0;
    roof.w = 20.0;
    roof.d = 10.0;
    roof.eave_height = 5.0;
    roof.tilt_deg = 26.0;
    roof.azimuth_deg = 195.0;  // SSW: height varies along x too
    const int idx = scene.add_roof(roof);
    const double west = scene.roof_plane_height(idx, 6.0, 10.0);
    const double east = scene.roof_plane_height(idx, 24.0, 10.0);
    // Downslope has a westward component => east side is higher.
    EXPECT_GT(east, west);
    // The lowest corner is at the eave height.
    EXPECT_NEAR(scene.roof_plane_height(idx, 5.0, 15.0), 5.0, 0.2);
}

}  // namespace
}  // namespace pvfp::geo

/// \file test_horizon_kernels.cpp
/// Differential suite for the batched horizon engine and the shared
/// macro-tile horizon cache.
///
/// The batched row-march kernels (scalar / AVX2 / AVX-512) promise
/// *bitwise* identity with the retained per-cell reference builder —
/// the same contract as the irradiance kernel tiers: every SIMD level
/// performs elementwise-identical IEEE arithmetic (mul+add, no FMA), so
/// a HorizonMap is one deterministic artifact no matter which tier the
/// dispatcher picks.  The cache promises that a window assembled from
/// cached macro-tile planes equals a fresh HorizonMap built over the
/// same halo mosaic, through eviction, rebuild, and concurrent access.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/geo/horizon.hpp"
#include "pvfp/geo/horizon_kernels.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/gis/horizon_cache.hpp"
#include "pvfp/gis/tile_index.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/simd.hpp"

namespace pvfp::geo {
namespace {

namespace fs = std::filesystem;

/// Restore the ambient SIMD level when a test scope ends.
struct SimdLevelGuard {
    SimdLevel saved = simd_level();
    ~SimdLevelGuard() { set_simd_level(saved); }
};

/// The SIMD levels this host can actually execute.
std::vector<SimdLevel> runnable_levels() {
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (cpu_supports_avx2()) levels.push_back(SimdLevel::Avx2);
    if (cpu_supports_avx512()) levels.push_back(SimdLevel::Avx512);
    return levels;
}

/// A pool of structurally different DSMs: procedural buildings, rough
/// random terrain, a smooth slope, and flat ground with a lone spike.
std::vector<Raster> test_dsms() {
    std::vector<Raster> dsms;

    SceneBuilder town(16.0, 16.0);
    town.add_building({3.0, 2.0, 2.5, 3.0, 5.0});
    town.add_building({10.0, 9.0, 4.0, 2.0, 7.5});
    town.add_building({6.5, 11.5, 1.0, 1.0, 12.0});
    dsms.push_back(town.rasterize(0.4));

    Rng rng(0xD5A11u);
    Raster rough(37, 29, 0.5);
    for (int y = 0; y < rough.height(); ++y)
        for (int x = 0; x < rough.width(); ++x)
            rough(x, y) = rng.uniform(0.0, 6.0);
    dsms.push_back(std::move(rough));

    Raster slope(31, 31, 0.25);
    for (int y = 0; y < slope.height(); ++y)
        for (int x = 0; x < slope.width(); ++x)
            slope(x, y) = 0.15 * x + 0.4 * y;
    dsms.push_back(std::move(slope));

    Raster spike(25, 25, 1.0, 2.0);
    spike(12, 12) = 40.0;
    dsms.push_back(std::move(spike));

    return dsms;
}

void expect_bitwise_equal(const HorizonMap& a, const HorizonMap& b,
                          const char* what) {
    ASSERT_EQ(a.sectors(), b.sectors());
    ASSERT_EQ(a.cell_count(), b.cell_count());
    const std::size_t angle_floats =
        static_cast<std::size_t>(a.cell_count()) * a.sectors();
    EXPECT_EQ(std::memcmp(a.angles_data(), b.angles_data(),
                          angle_floats * sizeof(float)),
              0)
        << what << ": angle planes differ";
    EXPECT_EQ(std::memcmp(a.svf_data(), b.svf_data(),
                          static_cast<std::size_t>(a.cell_count()) *
                              sizeof(float)),
              0)
        << what << ": svf planes differ";
}

TEST(HorizonKernels, BatchedMatchesReferenceBitwiseAtEveryLevel) {
    SimdLevelGuard guard;
    const std::vector<Raster> dsms = test_dsms();
    for (const int sectors : {7, 24}) {
        for (std::size_t d = 0; d < dsms.size(); ++d) {
            const Raster& dsm = dsms[d];
            HorizonOptions opt;
            opt.azimuth_sectors = sectors;
            opt.max_distance = 10.0 + 3.0 * static_cast<double>(d);
            // An off-center window exercises the x/y offset paths.
            const int x0 = 2, y0 = 1;
            const int w = dsm.width() - 4, h = dsm.height() - 3;
            const HorizonMap ref =
                horizon_map_reference(dsm, x0, y0, w, h, opt);
            for (const SimdLevel level : runnable_levels()) {
                set_simd_level(level);
                const HorizonMap batched(dsm, x0, y0, w, h, opt);
                expect_bitwise_equal(
                    batched, ref,
                    (std::string("dsm ") + std::to_string(d) + " sectors " +
                     std::to_string(sectors) + " level " +
                     simd_level_name(level))
                        .c_str());
            }
        }
    }
}

TEST(HorizonKernels, SimdTwinsAreCompiledOnX86) {
#if defined(__x86_64__) || defined(__amd64__)
    EXPECT_TRUE(detail::horizon_avx2_compiled());
    EXPECT_TRUE(detail::horizon_avx512_compiled());
#else
    GTEST_SKIP() << "non-x86 host: twins delegate to scalar";
#endif
}

TEST(HorizonKernels, DegenerateMaxDistanceYieldsZeroHorizons) {
    // max_distance below one marching step: the march loop never runs,
    // every horizon is 0 and the sky is fully open.
    Raster dsm(12, 12, 1.0);
    dsm(6, 6) = 50.0;
    HorizonOptions opt;
    opt.azimuth_sectors = 8;
    opt.max_distance = 0.5 * dsm.cell_size() * opt.step_factor;
    const HorizonMap map(dsm, 0, 0, 12, 12, opt);
    for (int s = 0; s < opt.azimuth_sectors; ++s)
        for (int wy = 0; wy < 12; ++wy)
            for (int wx = 0; wx < 12; ++wx)
                ASSERT_EQ(map.horizon(wx, wy, s), 0.0);
    EXPECT_DOUBLE_EQ(map.sky_view_factor(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(map.sky_view_factor(7, 7), 1.0);
}

TEST(HorizonKernels, RejectsInvalidObserverAndNonFiniteOptions) {
    Raster dsm(8, 8, 1.0);
    HorizonOptions bad;
    bad.observer_offset = -0.1;
    EXPECT_THROW(HorizonMap(dsm, 0, 0, 4, 4, bad), InvalidArgument);
    EXPECT_THROW(horizon_map_reference(dsm, 0, 0, 4, 4, bad),
                 InvalidArgument);
    for (double* field : {&bad.max_distance, &bad.step_factor,
                          &bad.step_growth, &bad.max_step_factor,
                          &bad.observer_offset}) {
        bad = HorizonOptions{};
        *field = std::nan("");
        EXPECT_THROW(HorizonMap(dsm, 0, 0, 4, 4, bad), InvalidArgument);
    }
    bad = HorizonOptions{};
    bad.max_distance = std::numeric_limits<double>::infinity();
    EXPECT_THROW(HorizonMap(dsm, 0, 0, 4, 4, bad), InvalidArgument);
}

TEST(HorizonKernels, FromPlanesValidatesShapes) {
    EXPECT_THROW(
        HorizonMap::from_planes(0, 0, 2, 2, 4, std::vector<float>(15),
                                std::vector<float>(4)),
        InvalidArgument);
    EXPECT_THROW(
        HorizonMap::from_planes(0, 0, 2, 2, 4, std::vector<float>(16),
                                std::vector<float>(3)),
        InvalidArgument);
    const HorizonMap ok = HorizonMap::from_planes(
        1, 2, 2, 2, 4, std::vector<float>(16, 0.25f),
        std::vector<float>(4, 0.5f));
    EXPECT_EQ(ok.window_x0(), 1);
    EXPECT_EQ(ok.window_y0(), 2);
    EXPECT_DOUBLE_EQ(ok.horizon(1, 1, 3), 0.25f);
    EXPECT_DOUBLE_EQ(ok.sky_view_factor(0, 1), 0.5f);
}

// ---------------------------------------------------------------------
// Shared horizon cache (gis::HorizonCache)
// ---------------------------------------------------------------------

/// A 2x2-tile synthetic terrain written to disk: enough structure that
/// horizons are nonzero across tile seams.
struct TileFixture {
    std::string dir;
    double cell = 0.5;
    int tile_cells = 24;  // 12 m tiles

    explicit TileFixture(const std::string& name) {
        const fs::path p =
            fs::path(::testing::TempDir()) / ("pvfp_" + name);
        fs::remove_all(p);
        fs::create_directories(p);
        dir = p.string();

        SceneBuilder scene(24.0, 24.0);
        scene.add_building({4.0, 5.0, 3.0, 3.0, 6.0});
        scene.add_building({14.0, 13.0, 5.0, 2.0, 9.0});
        scene.add_building({11.0, 3.5, 1.5, 1.5, 12.0});
        const Raster world = scene.rasterize(cell);
        for (int ty = 0; ty < 2; ++ty) {
            for (int tx = 0; tx < 2; ++tx) {
                Raster tile(tile_cells, tile_cells, cell, 0.0,
                            world.origin_x() + tx * tile_cells * cell,
                            world.origin_y() - ty * tile_cells * cell);
                for (int y = 0; y < tile_cells; ++y)
                    for (int x = 0; x < tile_cells; ++x)
                        tile(x, y) = world(tx * tile_cells + x,
                                           ty * tile_cells + y);
                write_asc_grid_file(
                    tile, dir + "/tile_" + std::to_string(ty) +
                              std::to_string(tx) + ".asc");
            }
        }
    }
};

gis::HorizonCacheOptions cache_options(int macro_cells,
                                       std::size_t budget = 256u << 20) {
    gis::HorizonCacheOptions opt;
    opt.horizon.azimuth_sectors = 12;
    opt.horizon.max_distance = 9.0;
    opt.macro_cells = macro_cells;
    opt.byte_budget = budget;
    return opt;
}

/// Rebuild one macro tile exactly as the cache documents: halo mosaic,
/// minimum backfill, HorizonMap over the core window.
HorizonMap fresh_macro_map(const gis::TileIndex& tiles,
                           const gis::HorizonCacheOptions& opt, long mx,
                           long my) {
    const double cs = tiles.cell_size();
    const long M = opt.macro_cells;
    const double ax = tiles.extent().x0, ay = tiles.extent().y1;
    const gis::WorldRect core{ax + mx * M * cs, ay - (my + 1) * M * cs,
                              ax + (mx + 1) * M * cs, ay - my * M * cs};
    Raster mosaic = tiles.read_window(
        core.expanded(opt.horizon.max_distance + 2.0 * cs), nullptr);
    double ground = 0.0;
    bool any = false;
    for (const double v : mosaic.grid().data()) {
        if (v == mosaic.nodata()) continue;
        ground = any ? std::min(ground, v) : v;
        any = true;
    }
    for (int y = 0; y < mosaic.height(); ++y)
        for (int x = 0; x < mosaic.width(); ++x)
            if (mosaic(x, y) == mosaic.nodata()) mosaic(x, y) = ground;
    const int cx0 =
        static_cast<int>(std::llround((core.x0 - mosaic.origin_x()) / cs));
    const int cy0 =
        static_cast<int>(std::llround((mosaic.origin_y() - core.y1) / cs));
    return HorizonMap(mosaic, cx0, cy0, static_cast<int>(M),
                      static_cast<int>(M), opt.horizon);
}

void expect_window_matches_fresh(const gis::TileIndex& tiles,
                                 const gis::HorizonCacheOptions& opt,
                                 const HorizonMap& window, long gx0,
                                 long gy0) {
    const long M = opt.macro_cells;
    std::map<std::pair<long, long>, std::unique_ptr<HorizonMap>> fresh;
    long angle_mismatch = 0, svf_mismatch = 0;
    bool nonzero = false;
    const int w = window.window_width(), h = window.window_height();
    for (int wy = 0; wy < h; ++wy) {
        for (int wx = 0; wx < w; ++wx) {
            const long gx = gx0 + wx, gy = gy0 + wy;
            const long mx = gx / M, my = gy / M;
            auto& fm = fresh[{mx, my}];
            if (!fm)
                fm = std::make_unique<HorizonMap>(
                    fresh_macro_map(tiles, opt, mx, my));
            const int fx = static_cast<int>(gx - mx * M);
            const int fy = static_cast<int>(gy - my * M);
            for (int s = 0; s < window.sectors(); ++s) {
                const float a = window.angles_data()
                    [static_cast<std::size_t>(s) * w * h +
                     static_cast<std::size_t>(wy) * w + wx];
                const float b = fm->angles_data()
                    [static_cast<std::size_t>(s) * M * M +
                     static_cast<std::size_t>(fy) * M + fx];
                if (std::memcmp(&a, &b, sizeof a) != 0) ++angle_mismatch;
                if (a != 0.0f) nonzero = true;
            }
            const float sa =
                window.svf_data()[static_cast<std::size_t>(wy) * w + wx];
            const float sb =
                fm->svf_data()[static_cast<std::size_t>(fy) * M + fx];
            if (std::memcmp(&sa, &sb, sizeof sa) != 0) ++svf_mismatch;
        }
    }
    EXPECT_EQ(angle_mismatch, 0);
    EXPECT_EQ(svf_mismatch, 0);
    EXPECT_TRUE(nonzero) << "window saw no obstruction: vacuous test";
}

TEST(HorizonCache, WindowMatchesFreshMacroMapsBitwise) {
    const TileFixture fx("hcache_identity");
    const gis::TileIndex tiles = gis::TileIndex::scan(fx.dir);
    gis::TileCache tile_cache(8);
    const gis::HorizonCacheOptions opt = cache_options(/*macro_cells=*/20);
    gis::HorizonCache cache(tiles, &tile_cache, opt);

    const double cs = tiles.cell_size();
    const double ax = tiles.extent().x0, ay = tiles.extent().y1;
    // Crosses all four macro tiles of the 48-cell lattice.
    const long gx0 = 9, gy0 = 13;
    const int w = 30, h = 25;
    const HorizonMap window =
        cache.window(ax + gx0 * cs, ay - gy0 * cs, 3, 4, w, h);
    EXPECT_EQ(window.window_x0(), 3);
    EXPECT_EQ(window.window_y0(), 4);
    expect_window_matches_fresh(tiles, opt, window, gx0, gy0);

    // Second request: served resident, byte-identical.
    const HorizonMap again =
        cache.window(ax + gx0 * cs, ay - gy0 * cs, 3, 4, w, h);
    expect_bitwise_equal(window, again, "resident re-request");
    const gis::HorizonCacheStats stats = cache.stats();
    EXPECT_GT(stats.hits, 0u);
    EXPECT_GT(stats.misses, 0u);
    EXPECT_GT(stats.bytes, 0u);

    // Off-lattice origins are rejected.
    EXPECT_THROW(cache.window(ax + 0.3 * cs, ay, 0, 0, 4, 4),
                 InvalidArgument);
}

TEST(HorizonCache, EvictedEntriesRebuildIdentically) {
    const TileFixture fx("hcache_evict");
    const gis::TileIndex tiles = gis::TileIndex::scan(fx.dir);
    gis::TileCache tile_cache(8);
    // Budget of one macro entry: planes = (sectors + 1) * M^2 floats.
    const gis::HorizonCacheOptions opt =
        cache_options(/*macro_cells=*/16, /*budget=*/13 * 16 * 16 * 4);
    gis::HorizonCache cache(tiles, &tile_cache, opt);

    const double cs = tiles.cell_size();
    const double ax = tiles.extent().x0, ay = tiles.extent().y1;
    const auto window_at = [&](long gx0, long gy0) {
        return cache.window(ax + gx0 * cs, ay - gy0 * cs, 0, 0, 12, 12);
    };
    const HorizonMap first = window_at(2, 2);
    window_at(20, 20);  // different macro tiles: evicts the first
    EXPECT_GT(cache.stats().evictions, 0u);
    const HorizonMap rebuilt = window_at(2, 2);
    expect_bitwise_equal(first, rebuilt, "post-eviction rebuild");
    EXPECT_LE(cache.bytes_used(), opt.byte_budget);

    cache.shrink_to(0);
    EXPECT_EQ(cache.bytes_used(), 0u);
    const HorizonMap again = window_at(2, 2);
    expect_bitwise_equal(first, again, "post-shrink rebuild");
}

TEST(HorizonCache, ConcurrentRequestsDedupAndAgree) {
    const TileFixture fx("hcache_mt");
    const gis::TileIndex tiles = gis::TileIndex::scan(fx.dir);
    gis::TileCache tile_cache(8);
    gis::HorizonCache cache(tiles, &tile_cache,
                            cache_options(/*macro_cells=*/20));

    const double cs = tiles.cell_size();
    const double ax = tiles.extent().x0, ay = tiles.extent().y1;
    constexpr int kThreads = 8;
    std::vector<std::unique_ptr<HorizonMap>> maps(kThreads);
    std::atomic<int> failures{0};
    {
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            threads.emplace_back([&, i] {
                try {
                    // All threads hit the same macro tiles; half through
                    // one window, half through a shifted one.
                    const long gx0 = (i % 2) ? 8 : 12;
                    maps[static_cast<std::size_t>(i)] =
                        std::make_unique<HorizonMap>(cache.window(
                            ax + gx0 * cs, ay - 10 * cs, 0, 0, 16, 16));
                } catch (...) {
                    failures.fetch_add(1);
                }
            });
        }
        for (std::thread& t : threads) t.join();
    }
    ASSERT_EQ(failures.load(), 0);
    for (int i = 2; i < kThreads; i += 2)
        expect_bitwise_equal(*maps[0], *maps[static_cast<std::size_t>(i)],
                             "concurrent same-window");
    for (int i = 3; i < kThreads; i += 2)
        expect_bitwise_equal(*maps[1], *maps[static_cast<std::size_t>(i)],
                             "concurrent shifted-window");
    const gis::HorizonCacheStats stats = cache.stats();
    // Both windows span the same 2x2 block of macro tiles; each macro
    // tile is built exactly once across all 8 threads — everything else
    // is served resident or joins the in-flight build.
    EXPECT_LE(stats.misses, 4u);
    EXPECT_GT(stats.hits + stats.joins, 0u);
}

}  // namespace
}  // namespace pvfp::geo

/// Tests for suitable-area extraction: obstacle detection via plane
/// residuals, clearance dilation, connected components, and the grid
/// alignment of the resulting placement area.

#include <gtest/gtest.h>

#include "pvfp/geo/scene.hpp"
#include "pvfp/geo/suitable_area.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {
namespace {

SceneBuilder simple_roof_scene() {
    SceneBuilder scene(20.0, 16.0);
    MonopitchRoof roof;
    roof.name = "r";
    roof.x = 4.0;
    roof.y = 4.0;
    roof.w = 12.0;
    roof.d = 8.0;
    roof.eave_height = 3.0;
    roof.tilt_deg = 26.0;
    roof.azimuth_deg = 180.0;
    scene.add_roof(roof);
    return scene;
}

TEST(SuitableArea, CleanRoofIsFullyValidUpToMargin) {
    SceneBuilder scene = simple_roof_scene();
    const Raster dsm = scene.rasterize(0.2);
    SuitableAreaOptions opt;
    opt.edge_margin = 0.0;
    opt.clearance = 0.0;
    const PlacementArea area = extract_placement_area(dsm, scene, 0, opt);
    EXPECT_EQ(area.width, 60);   // 12 m / 0.2
    EXPECT_EQ(area.height, 40);  // 8 m / 0.2
    EXPECT_EQ(area.valid_count, 60 * 40);
    EXPECT_NEAR(area.tilt_rad, deg2rad(26.0), 1e-12);
    EXPECT_NEAR(area.azimuth_rad, deg2rad(180.0), 1e-12);
    EXPECT_DOUBLE_EQ(area.cell_size, 0.2);
}

TEST(SuitableArea, EdgeMarginShrinksArea) {
    SceneBuilder scene = simple_roof_scene();
    const Raster dsm = scene.rasterize(0.2);
    SuitableAreaOptions opt;
    opt.edge_margin = 0.4;  // 2 cells on each side
    opt.clearance = 0.0;
    const PlacementArea area = extract_placement_area(dsm, scene, 0, opt);
    EXPECT_EQ(area.width, 56);
    EXPECT_EQ(area.height, 36);
    EXPECT_EQ(area.valid_count, 56 * 36);
}

TEST(SuitableArea, ObstacleCellsAreInvalid) {
    SceneBuilder scene = simple_roof_scene();
    // A 1 x 1 m chimney in the middle of the roof.
    scene.add_box({9.5, 7.5, 1.0, 1.0, 1.0, HeightRef::Surface});
    const Raster dsm = scene.rasterize(0.2);
    SuitableAreaOptions opt;
    opt.edge_margin = 0.0;
    opt.clearance = 0.0;
    const PlacementArea area = extract_placement_area(dsm, scene, 0, opt);
    // 25 cells covered by the chimney must be invalid.
    EXPECT_EQ(area.valid_count, 60 * 40 - 25);
    // Spot-check: a cell inside the chimney footprint.
    const int cx = static_cast<int>((10.0 - 4.0) / 0.2) - area.origin_col +
                   dsm.col_of(4.0);
    (void)cx;  // the count assertion above is the strong check
}

TEST(SuitableArea, ClearanceDilatesObstacles) {
    SceneBuilder scene = simple_roof_scene();
    scene.add_box({9.6, 7.6, 0.8, 0.8, 1.0, HeightRef::Surface});
    const Raster dsm = scene.rasterize(0.2);
    SuitableAreaOptions no_clear;
    no_clear.edge_margin = 0.0;
    no_clear.clearance = 0.0;
    SuitableAreaOptions with_clear = no_clear;
    with_clear.clearance = 0.6;
    const auto a0 = extract_placement_area(dsm, scene, 0, no_clear);
    const auto a1 = extract_placement_area(dsm, scene, 0, with_clear);
    EXPECT_LT(a1.valid_count, a0.valid_count);
    // Clearance must not erase the whole roof.
    EXPECT_GT(a1.valid_count, a0.valid_count / 2);
}

TEST(SuitableArea, CroppingToBoundingBox) {
    SceneBuilder scene(30.0, 20.0);
    MonopitchRoof roof;
    roof.x = 10.0;
    roof.y = 6.0;
    roof.w = 8.0;
    roof.d = 6.0;
    roof.eave_height = 3.0;
    roof.tilt_deg = 10.0;
    scene.add_roof(roof);
    const Raster dsm = scene.rasterize(0.5);
    SuitableAreaOptions opt;
    opt.edge_margin = 0.0;
    opt.clearance = 0.0;
    const PlacementArea area = extract_placement_area(dsm, scene, 0, opt);
    EXPECT_EQ(area.width, 16);
    EXPECT_EQ(area.height, 12);
    EXPECT_EQ(area.origin_col, dsm.col_of(10.0 + 0.25));
    // is_valid() bounds-checks gracefully.
    EXPECT_TRUE(area.is_valid(0, 0));
    EXPECT_FALSE(area.is_valid(-1, 0));
    EXPECT_FALSE(area.is_valid(99, 0));
}

TEST(SuitableArea, ThrowsWhenRoofFullyObstructed) {
    SceneBuilder scene = simple_roof_scene();
    // Cover the whole roof with a giant box.
    scene.add_box({4.0, 4.0, 12.0, 8.0, 2.0, HeightRef::Surface});
    const Raster dsm = scene.rasterize(0.2);
    EXPECT_THROW(extract_placement_area(dsm, scene, 0, {}), Infeasible);
}

TEST(SuitableArea, RejectsBadArguments) {
    SceneBuilder scene = simple_roof_scene();
    const Raster dsm = scene.rasterize(0.2);
    EXPECT_THROW(extract_placement_area(dsm, scene, 5, {}), InvalidArgument);
    SuitableAreaOptions bad;
    bad.clearance = -1.0;
    EXPECT_THROW(extract_placement_area(dsm, scene, 0, bad), InvalidArgument);
}

TEST(DilateInvalid, DiscGrowth) {
    Grid2D<unsigned char> v(9, 9, 1);
    v(4, 4) = 0;
    const auto d1 = dilate_invalid(v, 1.0);
    EXPECT_EQ(d1(4, 3), 0);
    EXPECT_EQ(d1(3, 4), 0);
    EXPECT_EQ(d1(3, 3), 1);  // sqrt(2) > 1: diagonal survives
    const auto d15 = dilate_invalid(v, 1.5);
    EXPECT_EQ(d15(3, 3), 0);  // sqrt(2) <= 1.5
    EXPECT_EQ(d15(2, 4), 1);  // distance 2 > 1.5
    // Radius zero is the identity.
    EXPECT_EQ(dilate_invalid(v, 0.0), v);
    EXPECT_THROW(dilate_invalid(v, -0.5), InvalidArgument);
}

TEST(LargestComponent, KeepsOnlyTheBiggest) {
    Grid2D<unsigned char> v(10, 3, 0);
    // Component A: 4 cells; component B: 6 cells, separated by a gap.
    for (int x = 0; x < 4; ++x) v(x, 0) = 1;
    for (int x = 0; x < 6; ++x) v(x + 4, 2) = 1;
    const auto keep = largest_component(v);
    int count = 0;
    for (const auto c : keep.data())
        if (c) ++count;
    EXPECT_EQ(count, 6);
    EXPECT_EQ(keep(0, 0), 0);
    EXPECT_EQ(keep(5, 2), 1);
}

TEST(LargestComponent, DiagonalIsNotConnected) {
    Grid2D<unsigned char> v(2, 2, 0);
    v(0, 0) = 1;
    v(1, 1) = 1;
    const auto keep = largest_component(v);
    int count = 0;
    for (const auto c : keep.data())
        if (c) ++count;
    EXPECT_EQ(count, 1);  // 4-connectivity: two separate components
}

TEST(LargestComponent, AllInvalidYieldsEmpty) {
    Grid2D<unsigned char> v(3, 3, 0);
    const auto keep = largest_component(v);
    for (const auto c : keep.data()) EXPECT_EQ(c, 0);
}

}  // namespace
}  // namespace pvfp::geo

/// Tests for the per-cell NormalMap and the roof surface texture — the
/// machinery behind the fine-grain irradiance variance (paper Fig. 6(b)).

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/geo/raster.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"
#include "pvfp/util/timegrid.hpp"

namespace pvfp::geo {
namespace {

TEST(NormalMap, FlatSurfacePointsUp) {
    Raster dsm(8, 8, 0.5, 3.0);
    const auto normals = NormalMap::from_dsm(dsm, 1, 1, 6, 6);
    EXPECT_EQ(normals.width(), 6);
    EXPECT_EQ(normals.height(), 6);
    for (int y = 0; y < 6; ++y) {
        for (int x = 0; x < 6; ++x) {
            EXPECT_FLOAT_EQ(normals.east(x, y), 0.0f);
            EXPECT_FLOAT_EQ(normals.north(x, y), 0.0f);
            EXPECT_FLOAT_EQ(normals.up(x, y), 1.0f);
        }
    }
}

TEST(NormalMap, SouthSlopingPlaneLeansSouth) {
    // Height decreases southward (row index growing): downslope south,
    // so the normal's north-component is negative, east zero.
    Raster dsm(10, 10, 0.5);
    for (int y = 0; y < 10; ++y)
        for (int x = 0; x < 10; ++x)
            dsm(x, y) = 10.0 - std::tan(deg2rad(26.0)) * dsm.local_y(y);
    const auto normals = NormalMap::from_dsm(dsm, 2, 2, 5, 5);
    const double expected_horiz = std::sin(deg2rad(26.0));
    EXPECT_NEAR(normals.east(2, 2), 0.0, 1e-6);
    EXPECT_NEAR(normals.north(2, 2), -expected_horiz, 1e-6);
    EXPECT_NEAR(normals.up(2, 2), std::cos(deg2rad(26.0)), 1e-6);
    // Unit length.
    const double len = std::sqrt(
        normals.east(2, 2) * normals.east(2, 2) +
        normals.north(2, 2) * normals.north(2, 2) +
        normals.up(2, 2) * normals.up(2, 2));
    EXPECT_NEAR(len, 1.0, 1e-6);
}

TEST(NormalMap, EastSlopingPlaneLeansEast) {
    // Height decreases eastward: downslope east => east-component < 0?
    // Normal leans toward the *downslope* direction: east positive?
    // n = normalize(-dzdx, dzdy, 1): dzdx < 0 => east = -dzdx > 0.
    Raster dsm(10, 10, 0.5);
    for (int y = 0; y < 10; ++y)
        for (int x = 0; x < 10; ++x)
            dsm(x, y) = 10.0 - 0.3 * dsm.local_x(x);
    const auto normals = NormalMap::from_dsm(dsm, 2, 2, 5, 5);
    EXPECT_GT(normals.east(2, 2), 0.0f);
    EXPECT_NEAR(normals.north(2, 2), 0.0, 1e-6);
}

TEST(NormalMap, WindowValidation) {
    Raster dsm(4, 4, 1.0);
    EXPECT_THROW(NormalMap::from_dsm(dsm, 0, 0, 5, 4), InvalidArgument);
    EXPECT_THROW(NormalMap::from_dsm(dsm, -1, 0, 2, 2), InvalidArgument);
    EXPECT_THROW(NormalMap::from_dsm(dsm, 0, 0, 0, 2), InvalidArgument);
}

TEST(RoofTexture, ZeroWithoutTextureAndBounded) {
    SceneBuilder scene(20.0, 20.0);
    MonopitchRoof roof;
    roof.x = 2.0;
    roof.y = 2.0;
    roof.w = 12.0;
    roof.d = 8.0;
    roof.eave_height = 3.0;
    roof.tilt_deg = 20.0;
    const int idx = scene.add_roof(roof);
    EXPECT_DOUBLE_EQ(scene.roof_texture_height(idx, 5.0, 5.0), 0.0);

    RoofTexture t;
    t.undulation_amp_x = 0.05;
    t.undulation_amp_y = 0.03;
    t.noise_amp = 0.04;
    t.seed = 7;
    scene.set_roof_texture(idx, t);
    double min_dz = 1e9;
    double max_dz = -1e9;
    for (double lx = 2.0; lx < 14.0; lx += 0.3) {
        for (double ly = 2.0; ly < 10.0; ly += 0.3) {
            const double dz = scene.roof_texture_height(idx, lx, ly);
            min_dz = std::min(min_dz, dz);
            max_dz = std::max(max_dz, dz);
            EXPECT_LE(std::abs(dz), 0.05 + 0.03 + 0.04 + 1e-12);
        }
    }
    // The texture actually varies (not degenerate).
    EXPECT_GT(max_dz - min_dz, 0.04);
}

TEST(RoofTexture, DeterministicAndSeedSensitive) {
    SceneBuilder scene(10.0, 10.0);
    MonopitchRoof roof;
    roof.w = 8.0;
    roof.d = 8.0;
    const int idx = scene.add_roof(roof);
    RoofTexture t;
    t.noise_amp = 0.05;
    t.seed = 1;
    scene.set_roof_texture(idx, t);
    const double a = scene.roof_texture_height(idx, 3.3, 4.4);
    scene.set_roof_texture(idx, t);
    EXPECT_DOUBLE_EQ(scene.roof_texture_height(idx, 3.3, 4.4), a);
    t.seed = 2;
    scene.set_roof_texture(idx, t);
    EXPECT_NE(scene.roof_texture_height(idx, 3.3, 4.4), a);
}

TEST(RoofTexture, AppearsInRasterizedDsm) {
    SceneBuilder scene(10.0, 10.0);
    MonopitchRoof roof;
    roof.x = 1.0;
    roof.y = 1.0;
    roof.w = 8.0;
    roof.d = 8.0;
    roof.eave_height = 2.0;
    roof.tilt_deg = 0.0;  // flat: texture is the only variation
    const int idx = scene.add_roof(roof);
    RoofTexture t;
    t.undulation_amp_x = 0.08;
    t.undulation_period_x = 2.0;
    scene.set_roof_texture(idx, t);
    const Raster dsm = scene.rasterize(0.25);
    double min_h = 1e9;
    double max_h = -1e9;
    for (int y = 8; y < 32; ++y) {
        for (int x = 8; x < 32; ++x) {
            min_h = std::min(min_h, dsm(x, y));
            max_h = std::max(max_h, dsm(x, y));
        }
    }
    EXPECT_GT(max_h - min_h, 0.12);  // ~2*amp visible
    EXPECT_LT(max_h - min_h, 0.17);
}

TEST(RoofTexture, Validation) {
    SceneBuilder scene(10.0, 10.0);
    MonopitchRoof roof;
    scene.add_roof(roof);
    RoofTexture bad;
    bad.noise_amp = -0.1;
    EXPECT_THROW(scene.set_roof_texture(0, bad), InvalidArgument);
    RoofTexture bad2;
    bad2.undulation_period_x = 0.0;
    EXPECT_THROW(scene.set_roof_texture(0, bad2), InvalidArgument);
    EXPECT_THROW(scene.set_roof_texture(3, RoofTexture{}), InvalidArgument);
    EXPECT_THROW(scene.roof_texture_height(5, 0.0, 0.0), InvalidArgument);
}

TEST(IrradianceFieldNormals, PerCellNormalModulatesBeam) {
    // Two cells: one on the ideal plane, one tilted further toward the
    // sun; with a NormalMap the second receives more beam.
    const TimeGrid grid(60, 172, 1);
    Raster dsm(6, 6, 0.2, 5.0);  // flat DSM: zero horizons
    HorizonMap horizon(dsm, 0, 0, 6, 6, {});

    NormalMap normals;
    normals.east = Grid2D<float>(6, 6, 0.0f);
    normals.north = Grid2D<float>(6, 6, 0.0f);
    normals.up = Grid2D<float>(6, 6, 1.0f);
    // Cell (3,3): tilted 20 deg toward south.
    normals.north(3, 3) = static_cast<float>(-std::sin(deg2rad(20.0)));
    normals.up(3, 3) = static_cast<float>(std::cos(deg2rad(20.0)));

    std::vector<solar::EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()),
        solar::EnvSample{600.0, 600.0, 100.0, 20.0});
    solar::FieldConfig config;
    config.sky_model = solar::SkyModel::Isotropic;
    const solar::IrradianceField field(std::move(horizon), std::move(env),
                                       grid, /*tilt=*/0.0, /*azimuth=*/0.0,
                                       config, std::move(normals));
    // Near solar noon the south-tilted cell collects more beam.
    long noon = grid.total_steps() / 2;
    ASSERT_TRUE(field.is_daylight(noon));
    EXPECT_GT(field.cell_irradiance(3, 3, noon),
              field.cell_irradiance(1, 1, noon) + 20.0);
}

TEST(IrradianceFieldNormals, MismatchedNormalMapThrows) {
    const TimeGrid grid(60, 1, 1);
    Raster dsm(4, 4, 0.2, 1.0);
    HorizonMap horizon(dsm, 0, 0, 4, 4, {});
    NormalMap wrong;
    wrong.east = Grid2D<float>(3, 4, 0.0f);
    wrong.north = Grid2D<float>(3, 4, 0.0f);
    wrong.up = Grid2D<float>(3, 4, 1.0f);
    std::vector<solar::EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()));
    EXPECT_THROW(solar::IrradianceField(std::move(horizon), std::move(env),
                                        grid, 0.3, kPi, {},
                                        std::move(wrong)),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::geo

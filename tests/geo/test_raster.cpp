/// Tests for Raster georeferencing, bilinear sampling, slope/aspect, and
/// the ESRI ASCII grid I/O round trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>

#include "pvfp/geo/asc_grid.hpp"
#include "pvfp/geo/raster.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/math.hpp"

namespace pvfp::geo {
namespace {

TEST(Raster, GeoreferencingConventions) {
    // 4x3 cells of 0.5 m; NW corner at easting 10, northing 20.
    Raster r(4, 3, 0.5, 0.0, 10.0, 20.0);
    EXPECT_DOUBLE_EQ(r.world_x(0), 10.25);
    EXPECT_DOUBLE_EQ(r.world_y(0), 19.75);  // northing decreases with row
    EXPECT_DOUBLE_EQ(r.world_y(2), 18.75);
    EXPECT_EQ(r.col_of(10.25), 0);
    EXPECT_EQ(r.col_of(11.9), 3);
    EXPECT_EQ(r.row_of(19.75), 0);
    EXPECT_EQ(r.row_of(18.6), 2);
    // Local coordinates grow south from the NW corner.
    EXPECT_DOUBLE_EQ(r.local_x(1), 0.75);
    EXPECT_DOUBLE_EQ(r.local_y(1), 0.75);
}

TEST(Raster, RejectsBadCellSize) {
    EXPECT_THROW(Raster(2, 2, 0.0), InvalidArgument);
    EXPECT_THROW(Raster(2, 2, -1.0), InvalidArgument);
}

TEST(Raster, BilinearInterpolatesLinearSurfaceExactly) {
    // Height = 2*lx + 3*ly is reproduced exactly by bilinear sampling.
    Raster r(10, 8, 0.2);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 10; ++x)
            r(x, y) = 2.0 * r.local_x(x) + 3.0 * r.local_y(y);
    for (double lx : {0.3, 0.77, 1.5}) {
        for (double ly : {0.3, 0.9, 1.2}) {
            EXPECT_NEAR(r.sample_bilinear_local(lx, ly), 2.0 * lx + 3.0 * ly,
                        1e-12);
        }
    }
}

TEST(Raster, BilinearClampsAtEdges) {
    Raster r(3, 3, 1.0);
    r(0, 0) = 5.0;
    EXPECT_DOUBLE_EQ(r.sample_bilinear_local(-10.0, -10.0), 5.0);
    r(2, 2) = 9.0;
    EXPECT_DOUBLE_EQ(r.sample_bilinear_local(100.0, 100.0), 9.0);
}

TEST(Raster, SlopeOfInclinedPlane) {
    // Plane rising 0.5 m per meter southward: slope = atan(0.5).
    Raster r(12, 12, 0.25);
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x) r(x, y) = 0.5 * r.local_y(y);
    const auto slopes = slope_map(r);
    EXPECT_NEAR(slopes(6, 6), std::atan(0.5), 1e-9);
    // Flat plane has zero slope.
    Raster flat(5, 5, 1.0, 2.0);
    EXPECT_DOUBLE_EQ(slope_map(flat)(2, 2), 0.0);
}

TEST(Raster, AspectPointsDownslope) {
    // Height increases northward (toward row 0) => downslope is south.
    Raster r(8, 8, 1.0);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x) r(x, y) = 10.0 - 1.0 * y;
    const auto aspects = aspect_map(r);
    EXPECT_NEAR(aspects(4, 4), kPi, 1e-9);  // 180 deg = South

    // Height increases westward => downslope is east (90 deg).
    Raster r2(8, 8, 1.0);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x) r2(x, y) = 10.0 - 1.0 * x;
    EXPECT_NEAR(aspect_map(r2)(4, 4), kPi / 2.0, 1e-9);

    // Flat cell: NaN.
    Raster flat(4, 4, 1.0, 1.0);
    EXPECT_TRUE(std::isnan(aspect_map(flat)(2, 2)));
}

TEST(AscGrid, RoundTripPreservesEverything) {
    Raster r(5, 4, 0.2, 0.0, 3.0, 44.0);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 5; ++x) r(x, y) = x + 10.0 * y + 0.25;
    r.set_nodata(-1234.0);

    std::ostringstream out;
    write_asc_grid(r, out);
    std::istringstream in(out.str());
    const Raster back = read_asc_grid(in);

    EXPECT_EQ(back.width(), 5);
    EXPECT_EQ(back.height(), 4);
    EXPECT_DOUBLE_EQ(back.cell_size(), 0.2);
    EXPECT_DOUBLE_EQ(back.origin_x(), 3.0);
    EXPECT_DOUBLE_EQ(back.origin_y(), 44.0);
    EXPECT_DOUBLE_EQ(back.nodata(), -1234.0);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 5; ++x)
            EXPECT_DOUBLE_EQ(back(x, y), r(x, y)) << x << "," << y;
}

TEST(AscGrid, ParsesStandardEsriHeader) {
    // yllcorner is the SW corner: NW origin must be yll + nrows*cell.
    std::istringstream in(
        "ncols 3\nnrows 2\nxllcorner 100\nyllcorner 200\ncellsize 10\n"
        "NODATA_value -9999\n"
        "1 2 3\n4 5 6\n");
    const Raster r = read_asc_grid(in);
    EXPECT_EQ(r.width(), 3);
    EXPECT_EQ(r.height(), 2);
    EXPECT_DOUBLE_EQ(r.origin_y(), 220.0);
    EXPECT_DOUBLE_EQ(r(0, 0), 1.0);  // row 0 = northernmost
    EXPECT_DOUBLE_EQ(r(2, 1), 6.0);
}

TEST(AscGrid, HeaderKeysAreCaseInsensitiveAndReordered) {
    std::istringstream in(
        "NROWS 1\nNCOLS 2\ncellsize 1\nXLLCORNER 0\nYLLCORNER 0\n7 8\n");
    const Raster r = read_asc_grid(in);
    EXPECT_EQ(r.width(), 2);
    EXPECT_DOUBLE_EQ(r(1, 0), 8.0);
}

TEST(AscGrid, MalformedInputsThrow) {
    std::istringstream missing_dims("cellsize 1\n1 2\n");
    EXPECT_THROW(read_asc_grid(missing_dims), IoError);
    std::istringstream truncated(
        "ncols 2\nnrows 2\ncellsize 1\n1 2 3\n");
    EXPECT_THROW(read_asc_grid(truncated), IoError);
    std::istringstream bad_cell(
        "ncols 1\nnrows 1\ncellsize -2\n1\n");
    EXPECT_THROW(read_asc_grid(bad_cell), IoError);
    EXPECT_THROW(read_asc_grid_file("/nonexistent/x.asc"), IoError);
}

TEST(AscGrid, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/pvfp_dsm.asc";
    Raster r(2, 2, 0.5, 1.5);
    write_asc_grid_file(r, path);
    const Raster back = read_asc_grid_file(path);
    EXPECT_DOUBLE_EQ(back(1, 1), 1.5);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace pvfp::geo

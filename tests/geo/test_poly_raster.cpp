/// \file test_poly_raster.cpp
/// The scanline rasterizer contract: the mask equals the per-cell
/// even-odd oracle bit for bit on every cell center, across randomized
/// polygons (including degenerate and collinear ones), and the
/// boundary hardening (on-vertex / on-horizontal-edge samples) is
/// deterministic.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <vector>

#include "pvfp/geo/poly_raster.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::geo {
namespace {

/// Compare the rasterized mask against the per-cell oracle on every
/// cell center of the window.
void expect_mask_matches_oracle(
    const std::vector<std::array<double, 2>>& poly, int width, int height,
    double cell_size, double origin_x, double origin_y,
    const char* what) {
    const auto mask = rasterize_polygon_even_odd(
        poly, width, height, cell_size, origin_x, origin_y);
    ASSERT_EQ(mask.width(), width);
    ASSERT_EQ(mask.height(), height);
    for (int y = 0; y < height; ++y) {
        const double py = origin_y - (y + 0.5) * cell_size;
        for (int x = 0; x < width; ++x) {
            const double px = origin_x + (x + 0.5) * cell_size;
            const bool oracle = point_in_polygon_even_odd(px, py, poly);
            ASSERT_EQ(mask(x, y) != 0, oracle)
                << what << ": cell (" << x << "," << y << ") center ("
                << px << "," << py << ")";
        }
    }
}

TEST(PolyRaster, SquareMatchesOracle) {
    const std::vector<std::array<double, 2>> square{
        {2.0, 2.0}, {8.0, 2.0}, {8.0, 8.0}, {2.0, 8.0}};
    expect_mask_matches_oracle(square, 12, 12, 1.0, 0.0, 12.0, "square");

    // Sanity on content, not just oracle parity: centers strictly inside.
    const auto mask =
        rasterize_polygon_even_odd(square, 12, 12, 1.0, 0.0, 12.0);
    long inside = 0;
    for (int y = 0; y < 12; ++y)
        for (int x = 0; x < 12; ++x) inside += mask(x, y);
    EXPECT_EQ(inside, 36);  // centers x.5/y.5 with x,y in [2,8) -> 6x6
    EXPECT_EQ(mask(2, 5), 1);
    EXPECT_EQ(mask(1, 5), 0);
}

TEST(PolyRaster, ConcaveAndSelfIntersectingMatchOracle) {
    // L-shape (concave).
    const std::vector<std::array<double, 2>> ell{
        {1.0, 1.0}, {9.0, 1.0}, {9.0, 5.0}, {5.0, 5.0},
        {5.0, 9.0}, {1.0, 9.0}};
    expect_mask_matches_oracle(ell, 10, 10, 1.0, 0.0, 10.0, "L-shape");

    // Bowtie (self-intersecting: even-odd leaves the pinch empty).
    const std::vector<std::array<double, 2>> bowtie{
        {1.0, 1.0}, {9.0, 9.0}, {9.0, 1.0}, {1.0, 9.0}};
    expect_mask_matches_oracle(bowtie, 10, 10, 1.0, 0.0, 10.0, "bowtie");
}

TEST(PolyRaster, BoundarySamplesAreInside) {
    // Square whose horizontal edges and vertices pass exactly through
    // cell centers (centers at half-integers with cell_size 1).
    const std::vector<std::array<double, 2>> square{
        {2.5, 2.5}, {7.5, 2.5}, {7.5, 7.5}, {2.5, 7.5}};
    // Top edge y = 7.5 is row y=2 (py = 10 - 2.5); its samples x in
    // [2.5, 7.5] must be inside, on both the oracle and the mask.
    EXPECT_TRUE(point_in_polygon_even_odd(2.5, 7.5, square));   // vertex
    EXPECT_TRUE(point_in_polygon_even_odd(5.5, 7.5, square));   // on edge
    EXPECT_TRUE(point_in_polygon_even_odd(5.5, 2.5, square));   // bottom
    EXPECT_FALSE(point_in_polygon_even_odd(8.5, 7.5, square));  // past it
    EXPECT_FALSE(point_in_polygon_even_odd(1.5, 2.5, square));
    expect_mask_matches_oracle(square, 10, 10, 1.0, 0.0, 10.0,
                               "on-center square");

    const auto mask =
        rasterize_polygon_even_odd(square, 10, 10, 1.0, 0.0, 10.0);
    for (int x = 2; x <= 7; ++x) {
        EXPECT_EQ(mask(x, 2), 1) << "top-edge sample x=" << x;
        EXPECT_EQ(mask(x, 7), 1) << "bottom-edge sample x=" << x;
    }
    EXPECT_EQ(mask(1, 2), 0);
    EXPECT_EQ(mask(8, 2), 0);
}

TEST(PolyRaster, DegenerateShapesMatchOracle) {
    // Collinear "polygon" (zero area): nothing strictly inside, but the
    // horizontal-segment samples themselves are boundary-inside.
    const std::vector<std::array<double, 2>> flat{
        {1.5, 4.5}, {5.5, 4.5}, {8.5, 4.5}};
    expect_mask_matches_oracle(flat, 10, 10, 1.0, 0.0, 10.0, "collinear");
    const auto mask =
        rasterize_polygon_even_odd(flat, 10, 10, 1.0, 0.0, 10.0);
    EXPECT_EQ(mask(3, 5), 1);  // py = 4.5 on the segment
    EXPECT_EQ(mask(3, 4), 0);

    // Repeated vertices.
    const std::vector<std::array<double, 2>> repeated{
        {2.0, 2.0}, {2.0, 2.0}, {8.0, 2.0}, {8.0, 8.0}, {8.0, 8.0},
        {2.0, 8.0}};
    expect_mask_matches_oracle(repeated, 10, 10, 1.0, 0.0, 10.0,
                               "repeated vertices");

    // A single point and a two-point "polygon".
    const std::vector<std::array<double, 2>> point{{4.5, 4.5}};
    expect_mask_matches_oracle(point, 10, 10, 1.0, 0.0, 10.0, "point");
    const std::vector<std::array<double, 2>> segment{{1.5, 6.5},
                                                     {7.5, 2.5}};
    expect_mask_matches_oracle(segment, 10, 10, 1.0, 0.0, 10.0, "segment");

    // Empty polygon: all-zero mask.
    const auto empty =
        rasterize_polygon_even_odd({}, 4, 4, 1.0, 0.0, 4.0);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 4; ++x) EXPECT_EQ(empty(x, y), 0);
}

TEST(PolyRaster, RandomizedDifferentialAgainstOracle) {
    // >= 50 random polygons spanning convex-ish rings, jagged stars,
    // fully random vertex clouds (self-intersecting), lattice-snapped
    // coordinates (exact on-center hits), and collinear degenerates.
    pvfp::Rng rng(20260808);
    const int width = 24;
    const int height = 20;
    const double origin_x = -3.0;
    const double origin_y = 17.0;
    for (int trial = 0; trial < 60; ++trial) {
        const int family = trial % 4;
        const int n_vertices =
            3 + static_cast<int>(rng.uniform_int(family == 3 ? 4 : 14));
        std::vector<std::array<double, 2>> poly;
        poly.reserve(static_cast<std::size_t>(n_vertices));
        if (family == 0) {
            // Star-like ring: angular order with random radii (concave,
            // non-self-intersecting).
            const double cx = rng.uniform(0.0, 18.0);
            const double cy = rng.uniform(0.0, 14.0);
            for (int v = 0; v < n_vertices; ++v) {
                const double ang =
                    (v + rng.uniform(0.0, 0.8)) * 2.0 * 3.14159265 /
                    n_vertices;
                const double r = rng.uniform(1.0, 9.0);
                poly.push_back(
                    {cx + r * std::cos(ang), cy + r * std::sin(ang)});
            }
        } else if (family == 1) {
            // Random vertex cloud: almost surely self-intersecting.
            for (int v = 0; v < n_vertices; ++v)
                poly.push_back({rng.uniform(-5.0, 23.0),
                                rng.uniform(-5.0, 19.0)});
        } else if (family == 2) {
            // Lattice-snapped half-integer coordinates: vertices and
            // horizontal edges land exactly on cell centers, exercising
            // the boundary hardening differentially.
            for (int v = 0; v < n_vertices; ++v)
                poly.push_back(
                    {static_cast<double>(rng.uniform_int(22)) - 2.5,
                     static_cast<double>(rng.uniform_int(18)) - 1.5});
        } else {
            // Degenerate: all vertices collinear on a random line
            // (horizontal every other trial).
            const bool horizontal = (trial / 4) % 2 == 0;
            const double c0 = rng.uniform(0.0, 14.0);
            const double slope = horizontal ? 0.0 : rng.uniform(-1.5, 1.5);
            for (int v = 0; v < n_vertices; ++v) {
                const double t = rng.uniform(-4.0, 20.0);
                poly.push_back({t, c0 + slope * t});
            }
        }
        char what[64];
        std::snprintf(what, sizeof(what), "trial %d family %d", trial,
                      family);
        expect_mask_matches_oracle(poly, width, height, 1.0, origin_x,
                                   origin_y, what);
        // Non-unit cell size and shifted origin on a subset.
        if (trial % 5 == 0)
            expect_mask_matches_oracle(poly, 30, 26, 0.8, origin_x - 1.0,
                                       origin_y + 2.0, what);
    }
}

TEST(PolyRaster, Validation) {
    EXPECT_THROW(
        rasterize_polygon_even_odd({{0.0, 0.0}}, 4, 4, 0.0, 0.0, 4.0),
        InvalidArgument);
    EXPECT_THROW(
        rasterize_polygon_even_odd({{0.0, 0.0}}, -1, 4, 1.0, 0.0, 4.0),
        InvalidArgument);
}

}  // namespace
}  // namespace pvfp::geo

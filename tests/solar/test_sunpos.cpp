/// Tests for the solar ephemeris: declination extremes, equation of time,
/// solar-noon geometry, cross-check of the two azimuth derivations, and
/// day-length sanity across latitudes.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/solar/sunpos.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::solar {
namespace {

constexpr int kSummerSolstice = 172;  // ~Jun 21
constexpr int kWinterSolstice = 355;  // ~Dec 21
constexpr int kSpringEquinox = 80;    // ~Mar 21

TEST(Declination, ExtremesAtSolstices) {
    EXPECT_NEAR(rad2deg(solar_declination(kSummerSolstice)), 23.44, 0.3);
    EXPECT_NEAR(rad2deg(solar_declination(kWinterSolstice)), -23.44, 0.3);
    EXPECT_NEAR(rad2deg(solar_declination(kSpringEquinox)), 0.0, 1.0);
}

TEST(Declination, BoundedEverywhere) {
    for (int doy = 1; doy <= 365; ++doy) {
        const double d = rad2deg(solar_declination(doy));
        EXPECT_LE(std::abs(d), 23.6) << "doy=" << doy;
    }
    EXPECT_THROW(solar_declination(0), InvalidArgument);
    EXPECT_THROW(solar_declination(367), InvalidArgument);
}

TEST(EquationOfTime, KnownShape) {
    // EoT ~ -14 min in mid-February, ~ +16 min in early November.
    EXPECT_NEAR(equation_of_time_minutes(45), -14.2, 1.5);
    EXPECT_NEAR(equation_of_time_minutes(309), 16.4, 1.5);
    // Bounded by ~±17 minutes all year.
    for (int doy = 1; doy <= 365; ++doy)
        EXPECT_LE(std::abs(equation_of_time_minutes(doy)), 17.5);
}

TEST(Eccentricity, WithinKnownBand) {
    // Earth-sun distance varies ~±1.7% -> E0 within ~[0.966, 1.035].
    for (int doy = 1; doy <= 365; ++doy) {
        const double e = eccentricity_factor(doy);
        EXPECT_GT(e, 0.96);
        EXPECT_LT(e, 1.04);
    }
    // Perihelion in early January: maximum E0.
    EXPECT_GT(eccentricity_factor(3), eccentricity_factor(185));
    EXPECT_NEAR(extraterrestrial_normal_irradiance(80), kSolarConstant, 30.0);
}

TEST(SunPosition, SolarNoonElevationMatchesClosedForm) {
    const Location torino{45.07, 7.69, 1.0};
    for (int doy : {kSpringEquinox, kSummerSolstice, kWinterSolstice}) {
        // Find the clock hour of solar noon from the time equation.
        const double noon_clock =
            12.0 - (equation_of_time_minutes(doy) +
                    4.0 * (torino.longitude_deg - 15.0)) /
                       60.0;
        const auto pos = sun_position(torino, doy, noon_clock);
        const double expected = 90.0 - torino.latitude_deg +
                                rad2deg(solar_declination(doy));
        EXPECT_NEAR(rad2deg(pos.elevation_rad), expected, 0.1)
            << "doy=" << doy;
        // At solar noon in Torino the sun is due south.
        EXPECT_NEAR(rad2deg(pos.azimuth_rad), 180.0, 0.5) << "doy=" << doy;
    }
}

TEST(SunPosition, MorningEastAfternoonWest) {
    const Location torino{45.07, 7.69, 1.0};
    const auto morning = sun_position(torino, kSummerSolstice, 8.0);
    const auto evening = sun_position(torino, kSummerSolstice, 18.0);
    EXPECT_GT(morning.elevation_rad, 0.0);
    EXPECT_LT(rad2deg(morning.azimuth_rad), 180.0);  // eastern half
    EXPECT_GT(rad2deg(evening.azimuth_rad), 180.0);  // western half
}

TEST(SunPosition, NightElevationNegative) {
    const Location torino{45.07, 7.69, 1.0};
    EXPECT_LT(sun_position(torino, 10, 0.5).elevation_rad, 0.0);
    EXPECT_LT(sun_position(torino, 10, 23.5).elevation_rad, 0.0);
}

TEST(SunPosition, ZenithNeverExceeded) {
    const Location equator{0.0, 0.0, 0.0};
    for (int doy = 1; doy <= 365; doy += 7) {
        for (double h = 0.25; h < 24.0; h += 0.5) {
            const auto pos = sun_position(equator, doy, h);
            EXPECT_LE(pos.elevation_rad, kPi / 2.0 + 1e-9);
            EXPECT_GE(pos.azimuth_rad, 0.0);
            EXPECT_LT(pos.azimuth_rad, kTwoPi);
        }
    }
}

/// Cross-check the two independent azimuth derivations over a broad sweep.
struct SweepCase {
    double lat;
    int doy;
};

class TwoDerivations : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TwoDerivations, AgreeEverywhere) {
    const auto [lat, doy] = GetParam();
    const Location loc{lat, 7.69, 1.0};
    for (double h = 0.25; h < 24.0; h += 0.25) {
        const auto a = sun_position(loc, doy, h);
        const auto b = sun_position_acos(loc, doy, h);
        EXPECT_NEAR(a.elevation_rad, b.elevation_rad, 1e-9);
        // The acos path is ill-conditioned where the sun crosses the
        // meridian (azimuth near 0 or pi: d(acos)/dx blows up at +-1), so
        // compare azimuths only away from those singular directions.
        const bool near_meridian =
            angle_distance(a.azimuth_rad, 0.0) < 0.15 ||
            angle_distance(a.azimuth_rad, kPi) < 0.15;
        if (a.elevation_rad > deg2rad(-5.0) && !near_meridian) {
            EXPECT_NEAR(angle_distance(a.azimuth_rad, b.azimuth_rad), 0.0,
                        1e-5)
                << "lat=" << lat << " doy=" << doy << " h=" << h;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    LatitudeSeason, TwoDerivations,
    ::testing::Values(SweepCase{45.07, 172}, SweepCase{45.07, 355},
                      SweepCase{45.07, 80}, SweepCase{0.0, 172},
                      SweepCase{-33.9, 172}, SweepCase{-33.9, 355},
                      SweepCase{68.0, 172}, SweepCase{68.0, 355}));

TEST(SouthernHemisphere, NoonSunIsNorth) {
    const Location sydney{-33.87, 151.2, 10.0};
    const double noon_clock =
        12.0 - (equation_of_time_minutes(kWinterSolstice) +
                4.0 * (sydney.longitude_deg - 150.0)) /
                   60.0;
    // December solstice: the subsolar latitude (-23.4) lies north of
    // Sydney (-33.9), so the noon sun is due north (azimuth ~ 0/360).
    const auto pos = sun_position(sydney, kWinterSolstice, noon_clock);
    const double az = rad2deg(pos.azimuth_rad);
    EXPECT_TRUE(az < 20.0 || az > 340.0) << az;
}

TEST(DayLength, SeasonalOrderingAndPolarCases) {
    const Location torino{45.07, 7.69, 1.0};
    const double summer = day_length_hours(torino, kSummerSolstice);
    const double winter = day_length_hours(torino, kWinterSolstice);
    const double equinox = day_length_hours(torino, kSpringEquinox);
    EXPECT_GT(summer, 15.0);
    EXPECT_LT(summer, 16.2);
    EXPECT_GT(winter, 8.3);
    EXPECT_LT(winter, 9.2);
    EXPECT_NEAR(equinox, 12.0, 0.25);

    const Location tromso{78.0, 19.0, 1.0};
    EXPECT_DOUBLE_EQ(day_length_hours(tromso, kSummerSolstice), 24.0);
    EXPECT_DOUBLE_EQ(day_length_hours(tromso, kWinterSolstice), 0.0);
}

TEST(SolarTime, LongitudeAndEotShiftClockTime) {
    // At the time-zone meridian (15 deg E for CET) solar time differs from
    // clock time by the equation of time only.
    const Location on_meridian{45.0, 15.0, 1.0};
    const int doy = 100;
    const double st = solar_time_hours(on_meridian, doy, 12.0);
    EXPECT_NEAR(st, 12.0 + equation_of_time_minutes(doy) / 60.0, 1e-12);
    // 7.69 E is west of the meridian: solar time lags.
    const Location torino{45.07, 7.69, 1.0};
    EXPECT_LT(solar_time_hours(torino, doy, 12.0), st);
    // Hour angle is zero at solar noon.
    const double noon_clock =
        12.0 - (equation_of_time_minutes(doy) +
                4.0 * (torino.longitude_deg - 15.0)) /
                   60.0;
    EXPECT_NEAR(hour_angle_rad(torino, doy, noon_clock), 0.0, 1e-9);
}

}  // namespace
}  // namespace pvfp::solar

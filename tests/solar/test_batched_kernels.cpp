/// \file test_batched_kernels.cpp
/// Property suite for the batched SoA irradiance kernels: the row kernel
/// (fixed step, span of cells), the series kernel (fixed cell, span of
/// steps), and the footprint-level anchor_irradiance_series must be
/// *bitwise equal* to the scalar cell_irradiance_unchecked loops across
/// randomized roofs, per-cell normals on/off, both sky models, and both
/// SIMD dispatch levels.  This is the determinism contract that lets the
/// evaluator, suitability, and incremental-evaluator hot paths run
/// through the kernels without moving a single golden digit.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/suitability.hpp"
#include "pvfp/geo/raster.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/util/simd.hpp"
#include "test_helpers.hpp"

namespace {

using namespace pvfp;

/// Restores auto dispatch when a test that forces a level exits.
struct SimdLevelGuard {
    ~SimdLevelGuard() { set_simd_level_auto(); }
};

/// Every dispatch level this CPU can run: always Scalar, plus Avx2 and
/// Avx512 when supported, so the per-level sweeps below cover the full
/// tier ladder and skip un-runnable tiers silently (the dedicated
/// Avx512 tests announce the skip).
std::vector<SimdLevel> runnable_levels() {
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (cpu_supports_avx2()) levels.push_back(SimdLevel::Avx2);
    if (cpu_supports_avx512()) levels.push_back(SimdLevel::Avx512);
    return levels;
}

struct RandomFieldSpec {
    std::uint64_t seed = 1;
    bool normals = false;
    solar::SkyModel sky = solar::SkyModel::HayDavies;
    int width = 19;  ///< odd width exercises the SIMD tail loops
    int height = 7;
    int days = 3;
};

/// A small rough roof with random obstacles and random (sometimes zero,
/// sometimes night-lit) weather, so every kernel branch — beam on/off,
/// shaded/lit, cosi sign — is exercised.
solar::IrradianceField random_field(const RandomFieldSpec& spec) {
    Rng rng(spec.seed);
    geo::Raster dsm(spec.width + 4, spec.height + 4, 0.2, 5.0);
    for (int y = 0; y < dsm.height(); ++y)
        for (int x = 0; x < dsm.width(); ++x)
            dsm(x, y) += rng.uniform(0.0, 0.3);  // surface roughness
    const int n_obstacles = 2 + static_cast<int>(rng.uniform_int(3));
    for (int o = 0; o < n_obstacles; ++o) {
        const int ox = static_cast<int>(rng.uniform_int(
            static_cast<std::uint64_t>(dsm.width())));
        const int oy = static_cast<int>(rng.uniform_int(
            static_cast<std::uint64_t>(dsm.height())));
        dsm(ox, oy) += rng.uniform(1.0, 5.0);
    }

    const TimeGrid grid(60, 120, spec.days);
    std::vector<solar::EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()));
    for (auto& e : env) {
        if (rng.bernoulli(0.15)) continue;  // dead step: all zeros
        e.ghi = rng.uniform(0.0, 900.0);
        e.dni = rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.0, 850.0);
        e.dhi = rng.uniform(0.0, 350.0);
        e.temp_air_c = rng.uniform(-5.0, 35.0);
    }

    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 24;
    hopt.max_distance = 12.0;
    geo::HorizonMap horizon(dsm, 2, 2, spec.width, spec.height, hopt);
    geo::NormalMap normals;
    if (spec.normals)
        normals = geo::NormalMap::from_dsm(dsm, 2, 2, spec.width,
                                           spec.height);
    solar::FieldConfig config;
    config.sky_model = spec.sky;
    return solar::IrradianceField(
        std::move(horizon), std::move(env), grid,
        deg2rad(rng.uniform(5.0, 45.0)), deg2rad(rng.uniform(90.0, 270.0)),
        config, std::move(normals));
}

std::vector<RandomFieldSpec> all_specs() {
    std::vector<RandomFieldSpec> specs;
    std::uint64_t seed = 100;
    for (const bool normals : {false, true})
        for (const auto sky :
             {solar::SkyModel::Isotropic, solar::SkyModel::HayDavies}) {
            RandomFieldSpec s;
            s.seed = seed++;
            s.normals = normals;
            s.sky = sky;
            specs.push_back(s);
        }
    return specs;
}

/// Every step of the field, plus a scrambled subset, as series spans.
std::vector<long> scrambled_steps(const solar::IrradianceField& field,
                                  std::uint64_t seed) {
    Rng rng(seed);
    std::vector<long> steps;
    for (long s = 0; s < field.steps(); ++s)
        if (rng.bernoulli(0.6)) steps.push_back(s);
    // A few duplicates and out-of-order entries: the kernel contract is
    // per-element, not per-sorted-span.
    if (steps.size() > 4) {
        steps.push_back(steps[2]);
        std::swap(steps[0], steps[steps.size() / 2]);
    }
    return steps;
}

void expect_row_matches(const solar::IrradianceField& field) {
    std::vector<double> out(static_cast<std::size_t>(field.width()));
    for (long s = 0; s < field.steps(); s += 3) {
        for (int y = 0; y < field.height(); ++y) {
            field.cell_irradiance_row(y, s, 0, field.width(), out.data());
            for (int x = 0; x < field.width(); ++x) {
                ASSERT_EQ(out[static_cast<std::size_t>(x)],
                          field.cell_irradiance_unchecked(x, y, s))
                    << "row mismatch at x=" << x << " y=" << y
                    << " s=" << s;
            }
        }
    }
    // Partial spans (offset start exercises unaligned SIMD heads).
    const int x0 = 3;
    const int x1 = field.width() - 2;
    field.cell_irradiance_row(1, 5, x0, x1, out.data());
    for (int x = x0; x < x1; ++x)
        ASSERT_EQ(out[static_cast<std::size_t>(x - x0)],
                  field.cell_irradiance_unchecked(x, 1, 5));
}

void expect_series_matches(const solar::IrradianceField& field,
                           std::uint64_t seed) {
    const std::vector<long> steps = scrambled_steps(field, seed);
    std::vector<double> out(steps.size());
    for (int y = 0; y < field.height(); y += 2) {
        for (int x = 0; x < field.width(); x += 3) {
            field.cell_irradiance_series(x, y, steps, out.data());
            for (std::size_t k = 0; k < steps.size(); ++k) {
                ASSERT_EQ(out[k],
                          field.cell_irradiance_unchecked(x, y, steps[k]))
                    << "series mismatch at x=" << x << " y=" << y
                    << " k=" << k;
            }
        }
    }
}

void expect_anchor_series_matches(const solar::IrradianceField& field,
                                  std::uint64_t seed) {
    const core::PanelGeometry geometry{5, 3};
    const std::vector<long> steps = scrambled_steps(field, seed);
    std::vector<double> out(steps.size());
    for (const auto mode :
         {core::ModuleIrradiance::FootprintMean,
          core::ModuleIrradiance::WorstCell,
          core::ModuleIrradiance::AnchorCell}) {
        for (int y = 0; y + geometry.k2 <= field.height(); y += 2) {
            for (int x = 0; x + geometry.k1 <= field.width(); x += 4) {
                core::anchor_irradiance_series(geometry, x, y, field,
                                               steps, mode, out.data());
                for (std::size_t k = 0; k < steps.size(); ++k) {
                    ASSERT_EQ(out[k], core::anchor_irradiance_unchecked(
                                          geometry, x, y, field, steps[k],
                                          mode))
                        << "anchor series mismatch at x=" << x
                        << " y=" << y << " k=" << k << " mode="
                        << static_cast<int>(mode);
                }
            }
        }
    }
}

TEST(BatchedKernels, RowMatchesScalarAcrossRoofs) {
    SimdLevelGuard guard;
    for (const auto& spec : all_specs()) {
        const auto field = random_field(spec);
        for (const SimdLevel level : runnable_levels()) {
            set_simd_level(level);
            expect_row_matches(field);
        }
    }
}

TEST(BatchedKernels, SeriesMatchesScalarAcrossRoofs) {
    SimdLevelGuard guard;
    for (const auto& spec : all_specs()) {
        const auto field = random_field(spec);
        for (const SimdLevel level : runnable_levels()) {
            set_simd_level(level);
            expect_series_matches(field, spec.seed + 7);
        }
    }
}

TEST(BatchedKernels, AnchorSeriesMatchesScalarAcrossModes) {
    SimdLevelGuard guard;
    for (const auto& spec : all_specs()) {
        const auto field = random_field(spec);
        for (const SimdLevel level : runnable_levels()) {
            set_simd_level(level);
            expect_anchor_series_matches(field, spec.seed + 13);
        }
    }
}

TEST(BatchedKernels, PackedPlanesMatchUnpackedSeries) {
    // The daylight-packed planes are bitwise copies: sweeping them via
    // cell_irradiance_packed must reproduce the scalar per-step
    // reference on the mapped original steps, at every dispatch level.
    SimdLevelGuard guard;
    for (const auto& spec : all_specs()) {
        const auto field = random_field(spec);
        const auto packed = field.packed_to_step();
        ASSERT_GT(field.packed_steps(), 0);
        std::vector<double> out(packed.size());
        for (const SimdLevel level : runnable_levels()) {
            set_simd_level(level);
            for (int y = 0; y < field.height(); y += 2)
                for (int x = 0; x < field.width(); x += 3) {
                    field.cell_irradiance_packed(
                        x, y, 0, field.packed_steps(), out.data());
                    for (std::size_t k = 0; k < packed.size(); ++k)
                        ASSERT_EQ(out[k], field.cell_irradiance_unchecked(
                                              x, y, packed[k]))
                            << "packed mismatch at x=" << x << " y=" << y
                            << " k=" << k << " level="
                            << simd_level_name(level);
                }
        }
    }
}

TEST(BatchedKernels, SeriesDetectsContiguousDaylightRuns) {
    // A step span that lists every daylight step between its endpoints
    // (what the stride-1 evaluator shards produce) takes the packed
    // fast path inside cell_irradiance_series; the result must stay
    // bitwise identical to the scalar reference.  Also probe sub-runs
    // crossing a night gap (contiguous in packed space) and spans that
    // must *not* match (scrambled, strided, night-leading).
    SimdLevelGuard guard;
    RandomFieldSpec spec;
    spec.seed = 777;
    spec.normals = true;
    const auto field = random_field(spec);
    const auto packed = field.packed_to_step();
    ASSERT_GT(packed.size(), 8u);

    std::vector<std::vector<long>> spans;
    spans.emplace_back(packed.begin(), packed.end());  // full daylight run
    spans.emplace_back(packed.begin() + 3,
                       packed.begin() + static_cast<long>(packed.size()) - 2);
    spans.push_back({packed[4]});
    {
        std::vector<long> strided;  // daylight stride 2: not contiguous
        for (std::size_t k = 0; k < packed.size(); k += 2)
            strided.push_back(packed[k]);
        spans.push_back(std::move(strided));
    }
    spans.push_back(scrambled_steps(field, 11));
    {
        std::vector<long> night_first;  // night step leads: gather path
        for (long s = 0; s < field.steps(); ++s)
            if (!field.is_daylight(s)) {
                night_first.push_back(s);
                break;
            }
        night_first.insert(night_first.end(), packed.begin(),
                           packed.begin() + 5);
        spans.push_back(std::move(night_first));
    }

    for (const SimdLevel level : runnable_levels()) {
        set_simd_level(level);
        for (const auto& steps : spans) {
            std::vector<double> out(steps.size());
            for (int y = 0; y < field.height(); y += 3)
                for (int x = 0; x < field.width(); x += 4) {
                    field.cell_irradiance_series(x, y, steps, out.data());
                    for (std::size_t k = 0; k < steps.size(); ++k)
                        ASSERT_EQ(out[k], field.cell_irradiance_unchecked(
                                              x, y, steps[k]))
                            << "span size " << steps.size() << " x=" << x
                            << " y=" << y << " k=" << k;
                }
        }
    }
}

TEST(BatchedKernels, PackedIndexMapsAreConsistent) {
    RandomFieldSpec spec;
    spec.seed = 555;
    const auto field = random_field(spec);
    const auto packed = field.packed_to_step();
    long count = 0;
    for (long s = 0; s < field.steps(); ++s) {
        const long p = field.packed_index(s);
        if (field.is_daylight(s)) {
            ASSERT_EQ(p, count);
            ASSERT_EQ(packed[static_cast<std::size_t>(p)], s);
            ++count;
        } else {
            ASSERT_EQ(p, -1);
        }
    }
    EXPECT_EQ(count, field.packed_steps());
    EXPECT_EQ(count, static_cast<long>(packed.size()));
    double out[1];
    EXPECT_THROW(
        field.cell_irradiance_packed(0, 0, 0, field.packed_steps() + 1, out),
        InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_packed(0, 0, -1, 0, out),
                 InvalidArgument);
    EXPECT_THROW(
        field.cell_irradiance_packed(field.width(), 0, 0, 1, out),
        InvalidArgument);
}

TEST(BatchedKernels, SimdLevelsAgreeBitwise) {
    if (!cpu_supports_avx2())
        GTEST_SKIP() << "CPU has no AVX2; single-level build";
    SimdLevelGuard guard;
    RandomFieldSpec spec;
    spec.seed = 321;
    spec.normals = true;
    const auto field = random_field(spec);
    const std::vector<long> steps = scrambled_steps(field, 5);
    std::vector<double> scalar_out(steps.size());
    std::vector<double> simd_out(steps.size());
    for (int y = 0; y < field.height(); ++y)
        for (int x = 0; x < field.width(); ++x) {
            set_simd_level(SimdLevel::Scalar);
            field.cell_irradiance_series(x, y, steps, scalar_out.data());
            for (const SimdLevel level : runnable_levels()) {
                if (level == SimdLevel::Scalar) continue;
                set_simd_level(level);
                field.cell_irradiance_series(x, y, steps, simd_out.data());
                ASSERT_EQ(scalar_out, simd_out)
                    << "level " << simd_level_name(level);
            }
        }
}

TEST(BatchedKernels, Avx512MatchesScalarBitwise) {
    // The dedicated tier-2 gate: every kernel shape at the AVX-512
    // level against the scalar reference.  Skips visibly on hosts
    // without AVX-512F/VL — the CI avx512 leg greps for this notice.
    if (!cpu_supports_avx512())
        GTEST_SKIP() << "CPU has no AVX-512F/VL; avx512 tier not runnable";
    SimdLevelGuard guard;
    for (const auto& spec : all_specs()) {
        const auto field = random_field(spec);
        set_simd_level(SimdLevel::Avx512);
        expect_row_matches(field);
        expect_series_matches(field, spec.seed + 7);
        expect_anchor_series_matches(field, spec.seed + 13);
    }
}

TEST(BatchedKernels, EvaluatorTotalsInvariantUnderSimd) {
    if (!cpu_supports_avx2())
        GTEST_SKIP() << "CPU has no AVX2; single-level build";
    SimdLevelGuard guard;
    const auto setup = pvfp::testing::shaded_setup();
    core::Floorplan plan;
    plan.geometry = {3, 2};
    plan.topology = {2, 2};
    plan.modules = {{0, 0}, {4, 0}, {0, 4 + 2}, {16, 2}};
    core::EvaluationOptions options;
    options.step_stride = 2;

    set_simd_level(SimdLevel::Scalar);
    const auto scalar_result = core::evaluate_floorplan(
        plan, setup.area, setup.field, setup.model, options);
    for (const SimdLevel level : runnable_levels()) {
        if (level == SimdLevel::Scalar) continue;
        set_simd_level(level);
        const auto simd_result = core::evaluate_floorplan(
            plan, setup.area, setup.field, setup.model, options);
        EXPECT_EQ(scalar_result.energy_kwh, simd_result.energy_kwh);
        EXPECT_EQ(scalar_result.ideal_energy_kwh,
                  simd_result.ideal_energy_kwh);
        EXPECT_EQ(scalar_result.mismatch_loss_kwh,
                  simd_result.mismatch_loss_kwh);
        EXPECT_EQ(scalar_result.wiring_loss_kwh,
                  simd_result.wiring_loss_kwh);
    }
}

TEST(BatchedKernels, SuitabilityInvariantUnderSimd) {
    if (!cpu_supports_avx2())
        GTEST_SKIP() << "CPU has no AVX2; single-level build";
    SimdLevelGuard guard;
    const auto setup = pvfp::testing::shaded_setup();
    core::SuitabilityOptions options;

    set_simd_level(SimdLevel::Scalar);
    const auto scalar_result =
        core::compute_suitability(setup.field, setup.area, options);
    for (const SimdLevel level : runnable_levels()) {
        if (level == SimdLevel::Scalar) continue;
        set_simd_level(level);
        const auto simd_result =
            core::compute_suitability(setup.field, setup.area, options);
        EXPECT_EQ(scalar_result.suitability, simd_result.suitability);
        EXPECT_EQ(scalar_result.g_percentile, simd_result.g_percentile);
        EXPECT_EQ(scalar_result.t_percentile, simd_result.t_percentile);
    }
}

TEST(BatchedKernels, RowValidatesArguments) {
    const TimeGrid grid = pvfp::testing::coarse_grid(1);
    const auto field = pvfp::testing::flat_field(
        8, 4, grid, pvfp::testing::constant_weather(grid));
    double out[8];
    EXPECT_THROW(field.cell_irradiance_row(-1, 0, 0, 8, out),
                 InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_row(0, -1, 0, 8, out),
                 InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_row(0, grid.total_steps(), 0, 8, out),
                 InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_row(0, 0, 0, 9, out),
                 InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_row(0, 0, 5, 4, out),
                 InvalidArgument);
    EXPECT_NO_THROW(field.cell_irradiance_row(0, 0, 4, 4, out));
}

TEST(BatchedKernels, SeriesValidatesArguments) {
    const TimeGrid grid = pvfp::testing::coarse_grid(1);
    const auto field = pvfp::testing::flat_field(
        8, 4, grid, pvfp::testing::constant_weather(grid));
    double out[4];
    const long bad_step[] = {0, grid.total_steps()};
    const long neg_step[] = {-1};
    const long good[] = {0, 1, 2, 3};
    EXPECT_THROW(field.cell_irradiance_series(8, 0, bad_step, out),
                 InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_series(0, 0, bad_step, out),
                 InvalidArgument);
    EXPECT_THROW(field.cell_irradiance_series(0, 0, neg_step, out),
                 InvalidArgument);
    EXPECT_NO_THROW(field.cell_irradiance_series(0, 0, good, out));
}

TEST(BatchedKernels, EnvValidationStillRejectsNegativeIrradiance) {
    const TimeGrid grid = pvfp::testing::coarse_grid(1);
    auto env = pvfp::testing::constant_weather(grid);
    env[3].dni = -1.0;
    geo::Raster dsm(4, 4, 0.2, 5.0);
    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 8;
    hopt.max_distance = 2.0;
    geo::HorizonMap horizon(dsm, 0, 0, 4, 4, hopt);
    EXPECT_THROW(solar::IrradianceField(std::move(horizon), std::move(env),
                                        grid, deg2rad(26.0),
                                        deg2rad(180.0)),
                 InvalidArgument);
}

TEST(SimdDispatch, ForcedLevelsRoundTrip) {
    SimdLevelGuard guard;
    set_simd_level(SimdLevel::Scalar);
    EXPECT_EQ(simd_level(), SimdLevel::Scalar);
    if (cpu_supports_avx2()) {
        set_simd_level(SimdLevel::Avx2);
        EXPECT_EQ(simd_level(), SimdLevel::Avx2);
    } else {
        EXPECT_THROW(set_simd_level(SimdLevel::Avx2), InvalidArgument);
    }
    if (cpu_supports_avx512()) {
        set_simd_level(SimdLevel::Avx512);
        EXPECT_EQ(simd_level(), SimdLevel::Avx512);
    } else {
        EXPECT_THROW(set_simd_level(SimdLevel::Avx512), InvalidArgument);
    }
    set_simd_level_auto();
    const SimdLevel resolved = simd_level();
    // Auto resolves to the widest runnable tier.
    if (cpu_supports_avx512())
        EXPECT_EQ(resolved, SimdLevel::Avx512);
    else if (cpu_supports_avx2())
        EXPECT_EQ(resolved, SimdLevel::Avx2);
    else
        EXPECT_EQ(resolved, SimdLevel::Scalar);
}

TEST(SimdDispatch, EnvToggleIsStrict) {
    const char* old = std::getenv("PVFP_SIMD");
    const std::string saved = old != nullptr ? old : "";
    // Unknown values and impossible requests must fail loudly — a CI
    // job forcing a level must never silently test the wrong kernels.
    setenv("PVFP_SIMD", "bogus", 1);
    EXPECT_THROW(set_simd_level_auto(), InvalidArgument);
    setenv("PVFP_SIMD", "scalar", 1);
    set_simd_level_auto();
    EXPECT_EQ(simd_level(), SimdLevel::Scalar);
    if (cpu_supports_avx2()) {
        setenv("PVFP_SIMD", "avx2", 1);
        set_simd_level_auto();
        EXPECT_EQ(simd_level(), SimdLevel::Avx2);
    }
    if (cpu_supports_avx512()) {
        setenv("PVFP_SIMD", "avx512", 1);
        set_simd_level_auto();
        EXPECT_EQ(simd_level(), SimdLevel::Avx512);
    } else {
        setenv("PVFP_SIMD", "avx512", 1);
        EXPECT_THROW(set_simd_level_auto(), InvalidArgument);
    }
    if (old != nullptr)
        setenv("PVFP_SIMD", saved.c_str(), 1);
    else
        unsetenv("PVFP_SIMD");
    set_simd_level_auto();
}

}  // namespace

/// \file test_sky_artifact.cpp
/// The shared-sky batching contract: an IrradianceField built from a
/// SharedSkyArtifact is bitwise identical to the self-contained
/// constructor, one artifact serves many roofs, and the precompute is
/// thread-count invariant.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "pvfp/solar/irradiance.hpp"
#include "pvfp/solar/sky_artifact.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/simd.hpp"
#include "test_helpers.hpp"

namespace pvfp::solar {
namespace {

using pvfp::testing::coarse_grid;
using pvfp::testing::constant_weather;

geo::Raster shaded_dsm(int w = 20, int h = 12) {
    geo::Raster dsm(w, h, 0.2, 5.0);
    for (int y = 3; y < 5; ++y)
        for (int x = 8; x < 10; ++x) dsm(x, y) = 7.0;  // chimney
    for (int y = 0; y < h; ++y) dsm(w - 1, y) = 8.5;   // eastern wall
    return dsm;
}

geo::HorizonMap make_horizon(const geo::Raster& dsm) {
    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 24;
    hopt.max_distance = 8.0;
    return geo::HorizonMap(dsm, 0, 0, dsm.width(), dsm.height(), hopt);
}

/// Non-constant weather exercising every branch (night, overcast,
/// beam-only, diffuse-only).
std::vector<EnvSample> varied_weather(const TimeGrid& grid) {
    std::vector<EnvSample> env(
        static_cast<std::size_t>(grid.total_steps()));
    for (std::size_t i = 0; i < env.size(); ++i) {
        const double phase = static_cast<double>(i % 24);
        env[i].ghi = phase < 6 ? 0.0 : 80.0 * phase;
        env[i].dni = phase < 8 ? 0.0 : 60.0 * phase;
        env[i].dhi = phase < 6 ? 0.0 : 25.0 * phase;
        env[i].temp_air_c = 10.0 + phase;
    }
    return env;
}

/// SIMD levels this host can actually execute.
std::vector<SimdLevel> runnable_levels() {
    std::vector<SimdLevel> levels{SimdLevel::Scalar};
    if (cpu_supports_avx2()) levels.push_back(SimdLevel::Avx2);
    if (cpu_supports_avx512()) levels.push_back(SimdLevel::Avx512);
    return levels;
}

void expect_artifacts_bitwise_equal(const SharedSkyArtifact& a,
                                    const SharedSkyArtifact& b,
                                    const char* what) {
    ASSERT_EQ(a.steps(), b.steps()) << what;
    for (long s = 0; s < a.steps(); ++s) {
        const std::size_t i = static_cast<std::size_t>(s);
        ASSERT_EQ(a.sun_azimuth[i], b.sun_azimuth[i]) << what << " step " << s;
        ASSERT_EQ(a.sun_elevation[i], b.sun_elevation[i])
            << what << " step " << s;
        ASSERT_EQ(a.sun_e[i], b.sun_e[i]) << what << " step " << s;
        ASSERT_EQ(a.sun_n[i], b.sun_n[i]) << what << " step " << s;
        ASSERT_EQ(a.sun_u[i], b.sun_u[i]) << what << " step " << s;
        ASSERT_EQ(a.beam_eq[i], b.beam_eq[i]) << what << " step " << s;
        ASSERT_EQ(a.dhi_iso[i], b.dhi_iso[i]) << what << " step " << s;
        ASSERT_EQ(a.daylight[i], b.daylight[i]) << what << " step " << s;
    }
}

TEST(SkyArtifact, BatchedPrepareMatchesReferenceBitwise) {
    // The batched prepare (per-day hoisting + SIMD geometry/transposition
    // kernels) must reproduce the unbatched reference loop bit for bit at
    // every SIMD level, across hemispheres (polar-night/midnight-sun
    // latitudes included) and both sky models.
    const TimeGrid grid = coarse_grid(12);
    const auto env = varied_weather(grid);
    for (const double lat : {-35.0, 0.0, 45.07, 68.5}) {
        for (const SkyModel model :
             {SkyModel::HayDavies, SkyModel::Isotropic}) {
            Location loc;
            loc.latitude_deg = lat;
            const SharedSkyArtifact ref =
                prepare_sky_artifact_reference(loc, grid, env, model);
            for (const SimdLevel lvl : runnable_levels()) {
                set_simd_level(lvl);
                const SharedSkyArtifact batched =
                    prepare_sky_artifact(loc, grid, env, model);
                set_simd_level_auto();
                const std::string what =
                    std::string("lat ") + std::to_string(lat) + " model " +
                    (model == SkyModel::HayDavies ? "hay" : "iso") + " " +
                    simd_level_name(lvl);
                expect_artifacts_bitwise_equal(ref, batched, what.c_str());
            }
        }
    }
}

TEST(SkyArtifact, FieldFromArtifactIsBitwiseIdentical) {
    const TimeGrid grid = coarse_grid(6);
    const auto env = varied_weather(grid);
    const geo::Raster dsm = shaded_dsm();
    const FieldConfig config;  // Torino, Hay-Davies

    const IrradianceField self(make_horizon(dsm), env, grid,
                               deg2rad(26.0), deg2rad(180.0), config);
    const auto sky =
        make_shared_sky(config.location, grid, env, config.sky_model);
    const IrradianceField shared(make_horizon(dsm), sky, deg2rad(26.0),
                                 deg2rad(180.0), config);

    ASSERT_EQ(self.steps(), shared.steps());
    for (long s = 0; s < self.steps(); ++s) {
        ASSERT_EQ(self.is_daylight(s), shared.is_daylight(s));
        ASSERT_EQ(self.sun(s).azimuth_rad, shared.sun(s).azimuth_rad);
        ASSERT_EQ(self.sun(s).elevation_rad, shared.sun(s).elevation_rad);
        ASSERT_EQ(self.air_temperature(s), shared.air_temperature(s));
        for (int y = 0; y < self.height(); ++y)
            for (int x = 0; x < self.width(); ++x)
                ASSERT_EQ(self.cell_irradiance(x, y, s),
                          shared.cell_irradiance(x, y, s))
                    << "cell (" << x << "," << y << ") step " << s;
    }
}

TEST(SkyArtifact, OneArtifactServesManyRoofOrientations) {
    const TimeGrid grid = coarse_grid(4);
    const auto env = varied_weather(grid);
    const geo::Raster dsm = shaded_dsm();
    const FieldConfig config;
    const auto sky =
        make_shared_sky(config.location, grid, env, config.sky_model);

    for (const auto& [tilt, azimuth] :
         {std::pair{10.0, 150.0}, std::pair{26.0, 180.0},
          std::pair{35.0, 225.0}, std::pair{0.0, 0.0}}) {
        const IrradianceField self(make_horizon(dsm), env, grid,
                                   deg2rad(tilt), deg2rad(azimuth), config);
        const IrradianceField shared(make_horizon(dsm), sky, deg2rad(tilt),
                                     deg2rad(azimuth), config);
        for (long s = 0; s < self.steps(); s += 3)
            for (int y = 0; y < self.height(); y += 3)
                for (int x = 0; x < self.width(); x += 3)
                    ASSERT_EQ(self.cell_irradiance(x, y, s),
                              shared.cell_irradiance(x, y, s))
                        << "tilt " << tilt << " azimuth " << azimuth;
    }
}

TEST(SkyArtifact, IsotropicSkyModelMatchesToo) {
    const TimeGrid grid = coarse_grid(3);
    const auto env = varied_weather(grid);
    const geo::Raster dsm = shaded_dsm();
    FieldConfig config;
    config.sky_model = SkyModel::Isotropic;

    const IrradianceField self(make_horizon(dsm), env, grid,
                               deg2rad(26.0), deg2rad(180.0), config);
    const auto sky =
        make_shared_sky(config.location, grid, env, config.sky_model);
    const IrradianceField shared(make_horizon(dsm), sky, deg2rad(26.0),
                                 deg2rad(180.0), config);
    for (long s = 0; s < self.steps(); ++s)
        for (int y = 0; y < self.height(); y += 2)
            for (int x = 0; x < self.width(); x += 2)
                ASSERT_EQ(self.cell_irradiance(x, y, s),
                          shared.cell_irradiance(x, y, s));
}

TEST(SkyArtifact, PrecomputeIsThreadCountInvariant) {
    const TimeGrid grid = coarse_grid(10);
    const auto env = varied_weather(grid);
    const FieldConfig config;

    set_thread_count(1);
    const SharedSkyArtifact one = prepare_sky_artifact(
        config.location, grid, env, config.sky_model);
    set_thread_count(8);
    const SharedSkyArtifact eight = prepare_sky_artifact(
        config.location, grid, env, config.sky_model);
    set_thread_count(0);

    ASSERT_EQ(one.steps(), eight.steps());
    for (long s = 0; s < one.steps(); ++s) {
        const std::size_t i = static_cast<std::size_t>(s);
        ASSERT_EQ(one.sun_azimuth[i], eight.sun_azimuth[i]);
        ASSERT_EQ(one.sun_elevation[i], eight.sun_elevation[i]);
        ASSERT_EQ(one.sun_e[i], eight.sun_e[i]);
        ASSERT_EQ(one.sun_n[i], eight.sun_n[i]);
        ASSERT_EQ(one.sun_u[i], eight.sun_u[i]);
        ASSERT_EQ(one.beam_eq[i], eight.beam_eq[i]);
        ASSERT_EQ(one.dhi_iso[i], eight.dhi_iso[i]);
        ASSERT_EQ(one.daylight[i], eight.daylight[i]);
    }
}

TEST(SkyArtifact, Validation) {
    const TimeGrid grid = coarse_grid(2);
    const FieldConfig config;
    const geo::Raster dsm = shaded_dsm();

    // Env length mismatch.
    auto short_env = constant_weather(grid);
    short_env.pop_back();
    EXPECT_THROW(prepare_sky_artifact(config.location, grid, short_env,
                                      config.sky_model),
                 InvalidArgument);

    // Negative irradiance.
    auto bad_env = constant_weather(grid);
    bad_env[1].dhi = -1.0;
    EXPECT_THROW(prepare_sky_artifact(config.location, grid, bad_env,
                                      config.sky_model),
                 InvalidArgument);

    // Null artifact handle.
    EXPECT_THROW(IrradianceField(make_horizon(dsm), nullptr, 0.3, kPi,
                                 config),
                 InvalidArgument);

    const auto sky = make_shared_sky(config.location, grid,
                                     constant_weather(grid),
                                     config.sky_model);

    // Mismatched location.
    FieldConfig other_site = config;
    other_site.location.latitude_deg += 1.0;
    EXPECT_THROW(IrradianceField(make_horizon(dsm), sky, 0.3, kPi,
                                 other_site),
                 InvalidArgument);

    // Mismatched sky model.
    FieldConfig other_model = config;
    other_model.sky_model = SkyModel::Isotropic;
    EXPECT_THROW(IrradianceField(make_horizon(dsm), sky, 0.3, kPi,
                                 other_model),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::solar

/// Tests for the ESRA clear-sky model: air mass, Rayleigh thickness,
/// magnitude sanity against published clear-sky values, and monotony in
/// elevation/turbidity/altitude.

#include <gtest/gtest.h>

#include "pvfp/solar/clearsky.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::solar {
namespace {

TEST(AirMass, OneAtZenithAndGrowsTowardHorizon) {
    EXPECT_NEAR(relative_air_mass(deg2rad(90.0)), 1.0, 0.01);
    EXPECT_NEAR(relative_air_mass(deg2rad(30.0)), 2.0, 0.02);
    EXPECT_NEAR(relative_air_mass(deg2rad(5.0)), 10.3, 0.5);
    // Kasten-Young stays finite at the horizon.
    const double at_horizon = relative_air_mass(0.0);
    EXPECT_GT(at_horizon, 30.0);
    EXPECT_LT(at_horizon, 45.0);
}

TEST(AirMass, AltitudeReducesPressureAndAirMass) {
    const double sea = relative_air_mass(deg2rad(40.0), 0.0);
    const double alpine = relative_air_mass(deg2rad(40.0), 2000.0);
    EXPECT_LT(alpine, sea);
    EXPECT_NEAR(alpine / sea, std::exp(-2000.0 / 8434.5), 1e-9);
}

TEST(Rayleigh, PiecewiseFitContinuousNearTwenty) {
    const double below = rayleigh_optical_thickness(19.999);
    const double above = rayleigh_optical_thickness(20.001);
    EXPECT_NEAR(below, above, 0.002);
    EXPECT_THROW(rayleigh_optical_thickness(0.0), InvalidArgument);
}

TEST(Rayleigh, DecreasesWithAirMass) {
    double prev = rayleigh_optical_thickness(1.0);
    for (double m = 2.0; m < 40.0; m += 1.0) {
        const double cur = rayleigh_optical_thickness(m);
        EXPECT_LT(cur, prev) << "m=" << m;
        prev = cur;
    }
}

TEST(Esra, NightIsZero) {
    const ClearSky cs = esra_clear_sky(-0.05, 100, 3.0);
    EXPECT_DOUBLE_EQ(cs.ghi, 0.0);
    EXPECT_DOUBLE_EQ(cs.dni, 0.0);
    EXPECT_DOUBLE_EQ(cs.dhi, 0.0);
}

TEST(Esra, MagnitudesMatchPublishedBallpark) {
    // Clean summer atmosphere (TL=3), high sun (60 deg): DNI ~ 850+-80,
    // GHI ~ 820+-80, diffuse ~ 15% of global — the standard ESRA numbers.
    const ClearSky cs = esra_clear_sky(deg2rad(60.0), 172, 3.0);
    EXPECT_NEAR(cs.dni, 850.0, 90.0);
    EXPECT_NEAR(cs.ghi, 830.0, 90.0);
    EXPECT_GT(cs.dhi, 60.0);
    EXPECT_LT(cs.dhi, 180.0);
    EXPECT_NEAR(cs.ghi, cs.dni * std::sin(deg2rad(60.0)) + cs.dhi, 1e-9);
}

TEST(Esra, GhiIncreasesWithElevation) {
    double prev = 0.0;
    for (double el = 2.0; el <= 90.0; el += 2.0) {
        const ClearSky cs = esra_clear_sky(deg2rad(el), 172, 3.0);
        EXPECT_GE(cs.ghi, prev) << "el=" << el;
        prev = cs.ghi;
    }
}

TEST(Esra, TurbidityReducesBeamAndRaisesDiffuse) {
    const ClearSky clean = esra_clear_sky(deg2rad(45.0), 100, 2.0);
    const ClearSky hazy = esra_clear_sky(deg2rad(45.0), 100, 6.0);
    EXPECT_LT(hazy.dni, clean.dni);
    EXPECT_GT(hazy.dhi, clean.dhi);
    // Total still drops with haze.
    EXPECT_LT(hazy.ghi, clean.ghi);
    EXPECT_THROW(esra_clear_sky(deg2rad(45.0), 100, 0.0), InvalidArgument);
}

TEST(Esra, BeamBelowExtraterrestrial) {
    for (double el = 5.0; el <= 90.0; el += 5.0) {
        for (double tl : {2.0, 3.5, 5.0, 7.0}) {
            const ClearSky cs = esra_clear_sky(deg2rad(el), 172, tl);
            EXPECT_LT(cs.dni, extraterrestrial_normal_irradiance(172));
            EXPECT_GE(cs.dni, 0.0);
            EXPECT_GE(cs.dhi, 0.0);
        }
    }
}

TEST(Esra, AltitudeIncreasesBeam) {
    const ClearSky sea = esra_clear_sky(deg2rad(40.0), 200, 3.0, 0.0);
    const ClearSky mountain = esra_clear_sky(deg2rad(40.0), 200, 3.0, 2500.0);
    EXPECT_GT(mountain.dni, sea.dni);
}

TEST(Esra, YearlyClearSkyGhiTorinoBallpark) {
    // Integrate clear-sky GHI over a year at 45N: literature gives
    // ~1700-1900 kWh/m^2 for TL ~ 3 — a coarse but strong sanity check.
    const Location torino{45.07, 7.69, 1.0};
    const LinkeTurbidity turbidity = LinkeTurbidity::torino_profile();
    double kwh = 0.0;
    for (int doy = 1; doy <= 365; ++doy) {
        for (double h = 0.25; h < 24.0; h += 0.5) {
            const auto sun = sun_position(torino, doy, h);
            if (sun.elevation_rad <= 0.0) continue;
            kwh += esra_clear_sky(sun.elevation_rad, doy,
                                  turbidity.at_day(doy), 240.0)
                       .ghi *
                   0.5 / 1000.0;
        }
    }
    EXPECT_GT(kwh, 1500.0);
    EXPECT_LT(kwh, 2000.0);
}

TEST(LinkeProfile, InterpolatesSmoothlyAndWraps) {
    const LinkeTurbidity lt = LinkeTurbidity::torino_profile();
    double prev = lt.at_day(1);
    double max_step = 0.0;
    for (int doy = 2; doy <= 365; ++doy) {
        const double cur = lt.at_day(doy);
        max_step = std::max(max_step, std::abs(cur - prev));
        prev = cur;
    }
    // Daily interpolation steps are small (no monthly jumps).
    EXPECT_LT(max_step, 0.05);
    // December 31 is close to January 1 (wrap-around continuity).
    EXPECT_NEAR(lt.at_day(365), lt.at_day(1), 0.1);
    EXPECT_THROW(lt.at_day(0), InvalidArgument);
    EXPECT_THROW(LinkeTurbidity({0.0, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}),
                 InvalidArgument);
}

TEST(LinkeProfile, SummerHazierThanWinterInTorino) {
    const LinkeTurbidity lt = LinkeTurbidity::torino_profile();
    EXPECT_GT(lt.at_day(190), lt.at_day(15));
}

}  // namespace
}  // namespace pvfp::solar

/// Tests for plane-of-array transposition: incidence geometry, the
/// horizontal identity (tilt 0 reproduces GHI), model ordering for
/// south-facing winter sun, and the beam/diffuse split used for shading.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/solar/transposition.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::solar {
namespace {

SunPosition sun_at(double az_deg, double el_deg) {
    return SunPosition{deg2rad(az_deg), deg2rad(el_deg)};
}

TEST(CosIncidence, NormalIncidenceIsOne) {
    // Plane tilted 30 deg facing south; sun due south at elevation 60:
    // the sun is along the plane normal.
    const double c =
        cos_incidence(sun_at(180.0, 60.0), deg2rad(30.0), deg2rad(180.0));
    EXPECT_NEAR(c, 1.0, 1e-12);
}

TEST(CosIncidence, HorizontalPlaneEqualsSinElevation) {
    for (double el : {10.0, 35.0, 70.0}) {
        const double c = cos_incidence(sun_at(123.0, el), 0.0, 0.0);
        EXPECT_NEAR(c, std::sin(deg2rad(el)), 1e-12);
    }
}

TEST(CosIncidence, SunBehindPlaneIsNegative) {
    // South-facing vertical wall, sun due north.
    const double c =
        cos_incidence(sun_at(0.0, 30.0), deg2rad(90.0), deg2rad(180.0));
    EXPECT_LT(c, 0.0);
}

TEST(Isotropic, HorizontalIdentityReproducesGhi) {
    // At tilt 0: beam = DNI*sin(el), sky = DHI, ground term = 0.
    const auto sun = sun_at(180.0, 40.0);
    const auto t = isotropic_tilted(600.0, 150.0, 600.0 * std::sin(sun.elevation_rad) + 150.0,
                                    sun, 0.0, 0.0, 0.2, 172);
    EXPECT_NEAR(t.beam, 600.0 * std::sin(deg2rad(40.0)), 1e-9);
    EXPECT_NEAR(t.sky_diffuse, 150.0, 1e-9);
    EXPECT_DOUBLE_EQ(t.ground_reflected, 0.0);
}

TEST(Isotropic, TiltTradesSkyForGround) {
    const auto sun = sun_at(180.0, 45.0);
    const auto flat = isotropic_tilted(500.0, 200.0, 553.0, sun, 0.0,
                                       deg2rad(180.0), 0.25, 100);
    const auto steep = isotropic_tilted(500.0, 200.0, 553.0, sun,
                                        deg2rad(60.0), deg2rad(180.0), 0.25,
                                        100);
    EXPECT_LT(steep.sky_diffuse, flat.sky_diffuse);
    EXPECT_GT(steep.ground_reflected, flat.ground_reflected);
}

TEST(Isotropic, SouthTiltBeatsHorizontalForLowWinterSun) {
    // Winter noon sun at 21 deg elevation: a 26-45 deg south tilt collects
    // far more beam than the horizontal.
    const auto sun = sun_at(180.0, 21.0);
    const auto flat =
        isotropic_tilted(700.0, 80.0, 330.0, sun, 0.0, 0.0, 0.2, 355);
    const auto tilted = isotropic_tilted(700.0, 80.0, 330.0, sun,
                                         deg2rad(40.0), deg2rad(180.0), 0.2,
                                         355);
    EXPECT_GT(tilted.beam, 1.5 * flat.beam);
}

TEST(Isotropic, NightHasNoBeam) {
    const auto t = isotropic_tilted(0.0, 0.0, 0.0, sun_at(0.0, -10.0),
                                    deg2rad(30.0), deg2rad(180.0), 0.2, 20);
    EXPECT_DOUBLE_EQ(t.total(), 0.0);
}

TEST(HayDavies, ReducesToIsotropicWhenNoBeam) {
    // DNI = 0 => anisotropy index 0 => identical to isotropic.
    const auto sun = sun_at(180.0, 30.0);
    const auto hd = hay_davies_tilted(0.0, 220.0, 220.0, sun, deg2rad(35.0),
                                      deg2rad(180.0), 0.2, 80);
    const auto iso = isotropic_tilted(0.0, 220.0, 220.0, sun, deg2rad(35.0),
                                      deg2rad(180.0), 0.2, 80);
    EXPECT_NEAR(hd.beam, iso.beam, 1e-9);
    EXPECT_NEAR(hd.sky_diffuse, iso.sky_diffuse, 1e-9);
    EXPECT_NEAR(hd.ground_reflected, iso.ground_reflected, 1e-9);
}

TEST(HayDavies, MovesCircumsolarIntoBeamComponent) {
    const auto sun = sun_at(180.0, 50.0);
    const auto hd = hay_davies_tilted(800.0, 120.0, 733.0, sun,
                                      deg2rad(30.0), deg2rad(180.0), 0.2,
                                      172);
    const auto iso = isotropic_tilted(800.0, 120.0, 733.0, sun,
                                      deg2rad(30.0), deg2rad(180.0), 0.2,
                                      172);
    // Part of the diffuse moved into the (shading-sensitive) beam bucket.
    EXPECT_GT(hd.beam, iso.beam);
    EXPECT_LT(hd.sky_diffuse, iso.sky_diffuse);
    // Totals stay within a few percent of each other for a sunlit cell.
    EXPECT_NEAR(hd.total(), iso.total(), 0.12 * iso.total());
}

TEST(HayDavies, AnisotropyBoundedNearHorizon) {
    // Grazing sun with strong beam must not blow up through 1/sin(el).
    const auto sun = sun_at(90.0, 1.0);
    const auto hd = hay_davies_tilted(300.0, 80.0, 90.0, sun, deg2rad(26.0),
                                      deg2rad(90.0), 0.2, 200);
    EXPECT_LT(hd.beam, 3000.0);
    EXPECT_GE(hd.beam, 0.0);
}

TEST(Transpose, DispatchMatchesDirectCalls) {
    const auto sun = sun_at(200.0, 35.0);
    const auto a = transpose(SkyModel::Isotropic, 500.0, 100.0, 390.0, sun,
                             deg2rad(26.0), deg2rad(195.0), 0.2, 150);
    const auto b = isotropic_tilted(500.0, 100.0, 390.0, sun, deg2rad(26.0),
                                    deg2rad(195.0), 0.2, 150);
    EXPECT_DOUBLE_EQ(a.total(), b.total());
    const auto c = transpose(SkyModel::HayDavies, 500.0, 100.0, 390.0, sun,
                             deg2rad(26.0), deg2rad(195.0), 0.2, 150);
    const auto d = hay_davies_tilted(500.0, 100.0, 390.0, sun, deg2rad(26.0),
                                     deg2rad(195.0), 0.2, 150);
    EXPECT_DOUBLE_EQ(c.total(), d.total());
}

TEST(Transpose, InputValidation) {
    const auto sun = sun_at(180.0, 30.0);
    EXPECT_THROW(isotropic_tilted(-1.0, 0.0, 0.0, sun, 0.3, 0.0, 0.2, 1),
                 InvalidArgument);
    EXPECT_THROW(isotropic_tilted(0.0, 0.0, 0.0, sun, -0.1, 0.0, 0.2, 1),
                 InvalidArgument);
    EXPECT_THROW(isotropic_tilted(0.0, 0.0, 0.0, sun, 0.3, 0.0, 1.5, 1),
                 InvalidArgument);
}

/// Parameterized identity: for a sunlit, unshaded plane the three
/// components are non-negative across a seasonal/diurnal sweep.
struct TransposeCase {
    double az_deg;
    double el_deg;
    double tilt_deg;
};

class NonNegativity : public ::testing::TestWithParam<TransposeCase> {};

TEST_P(NonNegativity, AllComponents) {
    const auto [az, el, tilt] = GetParam();
    const auto sun = sun_at(az, el);
    for (const auto model : {SkyModel::Isotropic, SkyModel::HayDavies}) {
        const auto t = transpose(model, 420.0, 130.0, 400.0, sun,
                                 deg2rad(tilt), deg2rad(195.0), 0.2, 140);
        EXPECT_GE(t.beam, 0.0);
        EXPECT_GE(t.sky_diffuse, 0.0);
        EXPECT_GE(t.ground_reflected, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NonNegativity,
    ::testing::Values(TransposeCase{90.0, 10.0, 26.0},
                      TransposeCase{135.0, 30.0, 26.0},
                      TransposeCase{180.0, 65.0, 26.0},
                      TransposeCase{270.0, 15.0, 26.0},
                      TransposeCase{0.0, 20.0, 26.0},
                      TransposeCase{180.0, 45.0, 0.0},
                      TransposeCase{180.0, 45.0, 90.0}));

}  // namespace
}  // namespace pvfp::solar

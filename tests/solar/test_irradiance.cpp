/// Tests for the IrradianceField: factorized evaluation against direct
/// transposition, shading/SVF attenuation, temperature coupling, and the
/// diagnostics used by the experiment harnesses.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.hpp"
#include "pvfp/geo/scene.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/solar/sunpos.hpp"
#include "pvfp/solar/transposition.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::solar {
namespace {

using pvfp::testing::coarse_grid;
using pvfp::testing::constant_weather;
using pvfp::testing::flat_field;

TEST(IrradianceField, SizeValidation) {
    const TimeGrid grid = coarse_grid(2);
    auto env = constant_weather(grid);
    env.pop_back();
    geo::Raster dsm(4, 4, 0.2, 1.0);
    geo::HorizonMap horizon(dsm, 0, 0, 4, 4, {});
    EXPECT_THROW(IrradianceField(std::move(horizon), std::move(env), grid,
                                 0.3, kPi),
                 InvalidArgument);
}

TEST(IrradianceField, UniformOverFlatRoof) {
    const TimeGrid grid = coarse_grid(3);
    const auto field = flat_field(6, 5, grid, constant_weather(grid));
    for (long s = 0; s < field.steps(); s += 5) {
        const double ref = field.cell_irradiance(0, 0, s);
        for (int y = 0; y < 5; ++y)
            for (int x = 0; x < 6; ++x)
                EXPECT_DOUBLE_EQ(field.cell_irradiance(x, y, s), ref);
    }
}

TEST(IrradianceField, MatchesDirectTranspositionOnFlatGround) {
    // Flat DSM, no horizon: cell irradiance == transpose(...) total.
    const TimeGrid grid = coarse_grid(2);
    const auto env = constant_weather(grid, 500.0, 420.0, 160.0, 18.0);
    FieldConfig config;
    config.sky_model = SkyModel::HayDavies;
    const double tilt = deg2rad(26.0);
    const double az = deg2rad(195.0);

    geo::Raster dsm(5, 5, 0.2, 2.0);
    geo::HorizonMap horizon(dsm, 0, 0, 5, 5, {});
    const IrradianceField field(std::move(horizon),
                                std::vector<EnvSample>(env), grid, tilt, az,
                                config);

    for (long s = 0; s < grid.total_steps(); ++s) {
        const int doy = grid.day_of_year(s);
        const auto sun = sun_position(config.location, doy,
                                      grid.hour_of_day(s));
        const auto expected =
            transpose(config.sky_model, 420.0, 160.0, 500.0, sun, tilt, az,
                      config.albedo, doy);
        EXPECT_NEAR(field.cell_irradiance(2, 2, s), expected.total(), 0.51)
            << "step " << s;  // float storage gives ~0.5 W/m^2 slack
        EXPECT_NEAR(field.plane_irradiance_unshaded(s), expected.total(),
                    0.51);
    }
}

TEST(IrradianceField, WallBlocksBeamButNotAllDiffuse) {
    // A tall wall east of a narrow strip: morning beam blocked, diffuse
    // only attenuated by the sky-view factor.
    geo::SceneBuilder scene(10.0, 6.0);
    scene.add_building({6.0, 0.0, 2.0, 6.0, 12.0});
    const geo::Raster dsm = scene.rasterize(0.5);
    const TimeGrid grid = coarse_grid(2);
    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 48;
    geo::HorizonMap horizon(dsm, 4, 4, 6, 4, hopt);
    FieldConfig config;
    config.sky_model = SkyModel::Isotropic;
    const IrradianceField field(std::move(horizon),
                                constant_weather(grid, 600.0, 500.0, 180.0),
                                grid, deg2rad(10.0), deg2rad(180.0), config);

    // Pick a mid-morning step (sun in the east, elevation moderate).
    long morning = -1;
    for (long s = 0; s < grid.total_steps(); ++s) {
        const auto sun = field.sun(s);
        if (sun.elevation_rad > deg2rad(15.0) &&
            rad2deg(sun.azimuth_rad) > 80.0 &&
            rad2deg(sun.azimuth_rad) < 110.0) {
            morning = s;
            break;
        }
    }
    ASSERT_GE(morning, 0);
    // Cell near the wall (window x=5 is local x=4.5+..., wall at 6):
    const double near_wall = field.cell_irradiance(3, 2, morning);
    const double unshaded = field.plane_irradiance_unshaded(morning);
    EXPECT_LT(near_wall, 0.6 * unshaded);  // beam gone
    EXPECT_GT(near_wall, 0.05 * unshaded); // diffuse survives
}

TEST(IrradianceField, ModuleTemperatureFollowsPaperModel) {
    const TimeGrid grid = coarse_grid(1);
    FieldConfig config;
    config.thermal_k = 1.0 / 30.0;
    geo::Raster dsm(3, 3, 0.2, 1.0);
    geo::HorizonMap horizon(dsm, 0, 0, 3, 3, {});
    const IrradianceField field(std::move(horizon),
                                constant_weather(grid, 600.0, 500.0, 180.0,
                                                 25.0),
                                grid, deg2rad(26.0), deg2rad(180.0), config);
    for (long s = 0; s < grid.total_steps(); ++s) {
        const double g = field.cell_irradiance(1, 1, s);
        EXPECT_NEAR(field.cell_module_temperature(1, 1, s),
                    field.air_temperature(s) + g / 30.0, 1e-9);
    }
}

TEST(IrradianceField, NightStepsYieldOnlyReflectedZero) {
    const TimeGrid grid = coarse_grid(1);
    const auto field = flat_field(3, 3, grid, constant_weather(grid));
    // Midnight step: sun below horizon -> not daylight, no beam.
    EXPECT_FALSE(field.is_daylight(0));
    // With constant (unphysical) nonzero weather the night value contains
    // no beam: only svf*diffuse + reflected, which is < daytime peak.
    const double midnight = field.cell_irradiance(1, 1, 0);
    double noon_max = 0.0;
    for (long s = 0; s < grid.total_steps(); ++s)
        noon_max = std::max(noon_max, field.cell_irradiance(1, 1, s));
    EXPECT_LT(midnight, noon_max);
}

TEST(IrradianceField, UnshadedInsolationIntegratesSanely) {
    // One clear-sky-like constant day at 1 kW/m^2 for 24 h at tilt 0 would
    // be 24 kWh; real geometry keeps it well below.
    const TimeGrid grid = coarse_grid(4);
    const auto field = flat_field(2, 2, grid, constant_weather(grid));
    const double kwh = field.unshaded_insolation_kwh_m2();
    EXPECT_GT(kwh, 0.5);
    EXPECT_LT(kwh, 24.0 * 4);
}

TEST(IrradianceField, RejectsNegativeWeatherAndBadSteps) {
    const TimeGrid grid = coarse_grid(1);
    auto env = constant_weather(grid);
    env[3].ghi = -5.0;
    geo::Raster dsm(3, 3, 0.2, 1.0);
    geo::HorizonMap horizon(dsm, 0, 0, 3, 3, {});
    EXPECT_THROW(IrradianceField(std::move(horizon), std::move(env), grid,
                                 0.3, kPi),
                 InvalidArgument);
    const auto field = flat_field(3, 3, grid, constant_weather(grid));
    EXPECT_THROW(field.cell_irradiance(0, 0, -1), InvalidArgument);
    EXPECT_THROW(field.cell_irradiance(0, 0, grid.total_steps()),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::solar

/// Tests for GHI decomposition: Erbs correlation properties, Engerer2
/// bounds/behaviour, and closure (GHI = DNI*sin(el) + DHI) of both paths.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/solar/clearsky.hpp"
#include "pvfp/solar/decomposition.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::solar {
namespace {

TEST(ClearnessIndex, DefinitionAndClamping) {
    const int doy = 172;
    const double el = deg2rad(60.0);
    const double top =
        extraterrestrial_normal_irradiance(doy) * std::sin(el);
    EXPECT_NEAR(clearness_index(0.5 * top, el, doy), 0.5, 1e-12);
    EXPECT_DOUBLE_EQ(clearness_index(10.0 * top, el, doy), 1.25);  // clamp
    EXPECT_DOUBLE_EQ(clearness_index(500.0, -0.1, doy), 0.0);       // night
    EXPECT_THROW(clearness_index(-1.0, el, doy), InvalidArgument);
}

TEST(Erbs, PiecewiseValuesAndContinuity) {
    // Overcast: nearly all diffuse.
    EXPECT_NEAR(erbs_diffuse_fraction(0.0), 1.0, 1e-12);
    EXPECT_NEAR(erbs_diffuse_fraction(0.1), 0.991, 1e-3);
    // Clear: the flat 0.165 branch.
    EXPECT_DOUBLE_EQ(erbs_diffuse_fraction(0.9), 0.165);
    // Continuity at the 0.22 junction.
    EXPECT_NEAR(erbs_diffuse_fraction(0.22 - 1e-9),
                erbs_diffuse_fraction(0.22 + 1e-9), 5e-3);
    EXPECT_THROW(erbs_diffuse_fraction(-0.1), InvalidArgument);
}

TEST(Erbs, FractionWithinUnitInterval) {
    for (double kt = 0.0; kt <= 1.25; kt += 0.01) {
        const double f = erbs_diffuse_fraction(kt);
        EXPECT_GE(f, 0.0) << kt;
        EXPECT_LE(f, 1.0) << kt;
    }
}

TEST(Erbs, BroadlyDecreasingFromOvercastToClear) {
    // Not strictly monotone near the polynomial's tail, but the coarse
    // trend must hold: clearer sky => smaller diffuse fraction.
    EXPECT_GT(erbs_diffuse_fraction(0.1), erbs_diffuse_fraction(0.5));
    EXPECT_GT(erbs_diffuse_fraction(0.5), erbs_diffuse_fraction(0.85));
}

TEST(DecomposeErbs, ClosureHolds) {
    const int doy = 100;
    for (double el_deg : {5.0, 20.0, 45.0, 70.0}) {
        for (double ghi : {50.0, 200.0, 500.0, 900.0}) {
            const double el = deg2rad(el_deg);
            const auto d = decompose_erbs(ghi, el, doy);
            EXPECT_NEAR(d.dni * std::sin(el) + d.dhi, ghi, 1e-9)
                << "el=" << el_deg << " ghi=" << ghi;
            EXPECT_GE(d.dni, 0.0);
            EXPECT_GE(d.dhi, 0.0);
        }
    }
}

TEST(DecomposeErbs, NightAndZeroGhi) {
    const auto night = decompose_erbs(100.0, -0.1, 50);
    EXPECT_DOUBLE_EQ(night.dni, 0.0);
    EXPECT_DOUBLE_EQ(night.dhi, 0.0);
    const auto zero = decompose_erbs(0.0, deg2rad(30.0), 50);
    EXPECT_DOUBLE_EQ(zero.dni, 0.0);
    EXPECT_DOUBLE_EQ(zero.dhi, 0.0);
}

TEST(DecomposeErbs, DniCappedByExtraterrestrial) {
    const int doy = 1;
    const double el = deg2rad(3.0);  // grazing sun, huge 1/sin(el)
    const auto d = decompose_erbs(300.0, el, doy);
    EXPECT_LE(d.dni, extraterrestrial_normal_irradiance(doy) + 1e-9);
    // Closure still maintained after the cap.
    EXPECT_NEAR(d.dni * std::sin(el) + d.dhi, 300.0, 1e-9);
}

TEST(Engerer2, FractionBounded) {
    for (double kt = 0.0; kt <= 1.2; kt += 0.05) {
        for (double zen_deg : {10.0, 45.0, 80.0}) {
            const double f = engerer2_diffuse_fraction(
                kt, deg2rad(zen_deg), 12.0, 0.0, 0.0);
            EXPECT_GE(f, 0.0);
            EXPECT_LE(f, 1.0);
        }
    }
}

TEST(Engerer2, CloudyVsClearSeparation) {
    // kt = 0.2 (overcast) must give much more diffuse than kt = 0.8.
    const double cloudy =
        engerer2_diffuse_fraction(0.2, deg2rad(45.0), 12.0, 0.5, 0.0);
    const double clear =
        engerer2_diffuse_fraction(0.8, deg2rad(45.0), 12.0, 0.0, 0.0);
    EXPECT_GT(cloudy, 0.8);
    EXPECT_LT(clear, 0.3);
}

TEST(Engerer2, CloudEnhancementTermAddsDiffuse) {
    const double base =
        engerer2_diffuse_fraction(1.0, deg2rad(30.0), 12.0, -0.1, 0.0);
    const double enhanced =
        engerer2_diffuse_fraction(1.0, deg2rad(30.0), 12.0, -0.1, 0.2);
    EXPECT_GT(enhanced, base);
}

TEST(DecomposeEngerer2, ClosureAndClearSkyConsistency) {
    const Location torino{45.07, 7.69, 1.0};
    const int doy = 172;
    const double hour = 12.0;
    const auto sun = sun_position(torino, doy, hour);
    const auto clear = esra_clear_sky(sun.elevation_rad, doy, 3.0);
    // Measured == clear sky: mostly beam.
    const auto d = decompose_engerer2(clear.ghi, clear.ghi,
                                      sun.elevation_rad, doy,
                                      solar_time_hours(torino, doy, hour));
    EXPECT_NEAR(d.dni * std::sin(sun.elevation_rad) + d.dhi, clear.ghi, 1e-9);
    EXPECT_LT(d.dhi / clear.ghi, 0.35);
    // Heavy overcast: nearly all diffuse.
    const auto o = decompose_engerer2(0.15 * clear.ghi, clear.ghi,
                                      sun.elevation_rad, doy,
                                      solar_time_hours(torino, doy, hour));
    EXPECT_GT(o.dhi / (0.15 * clear.ghi), 0.8);
}

TEST(DecomposeEngerer2, DegradesGracefullyWithoutClearSky) {
    const auto d = decompose_engerer2(400.0, 0.0, deg2rad(40.0), 150, 10.0);
    EXPECT_GE(d.dni, 0.0);
    EXPECT_GE(d.dhi, 0.0);
    EXPECT_NEAR(d.dni * std::sin(deg2rad(40.0)) + d.dhi, 400.0, 1e-9);
}

TEST(Decompose, NegativeInputsRejected) {
    EXPECT_THROW(decompose_erbs(-1.0, 0.5, 100), InvalidArgument);
    EXPECT_THROW(decompose_engerer2(-1.0, 0.0, 0.5, 100, 12.0),
                 InvalidArgument);
    EXPECT_THROW(decompose_engerer2(100.0, -1.0, 0.5, 100, 12.0),
                 InvalidArgument);
}

}  // namespace
}  // namespace pvfp::solar

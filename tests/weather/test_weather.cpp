/// Tests for the weather substrate: summaries, physical-consistency
/// validation, the synthetic generator's statistics, and station CSV I/O.

#include <gtest/gtest.h>

#include <cstdio>

#include "pvfp/solar/sunpos.hpp"
#include "pvfp/util/csv.hpp"
#include "pvfp/util/error.hpp"
#include "pvfp/util/table.hpp"
#include "pvfp/weather/station_csv.hpp"
#include "pvfp/weather/synthetic.hpp"
#include "pvfp/weather/weather.hpp"

namespace pvfp::weather {
namespace {

const solar::Location kTorino{45.07, 7.69, 1.0};

TimeGrid year_grid() { return TimeGrid(15, 1, 365); }

std::vector<EnvSample> make_year(std::uint64_t seed = 42) {
    SyntheticWeatherOptions opt;
    opt.seed = seed;
    return generate_synthetic_weather(kTorino, year_grid(), opt);
}

TEST(Summarize, CountsAndIntegrals) {
    const TimeGrid grid(60, 1, 1);
    std::vector<EnvSample> env(24);
    env[12] = {1000.0, 800.0, 200.0, 30.0};  // one bright hour
    const WeatherSummary s = summarize(env, grid);
    EXPECT_NEAR(s.ghi_kwh_m2, 1.0, 1e-12);
    EXPECT_NEAR(s.dni_kwh_m2, 0.8, 1e-12);
    EXPECT_NEAR(s.dhi_kwh_m2, 0.2, 1e-12);
    EXPECT_NEAR(s.diffuse_fraction, 0.2, 1e-12);
    EXPECT_NEAR(s.max_temp_c, 30.0, 1e-12);
    std::vector<EnvSample> wrong(23);
    EXPECT_THROW(summarize(wrong, grid), InvalidArgument);
}

TEST(Synthetic, Deterministic) {
    const auto a = make_year(7);
    const auto b = make_year(7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i += 997) {
        EXPECT_DOUBLE_EQ(a[i].ghi, b[i].ghi);
        EXPECT_DOUBLE_EQ(a[i].temp_air_c, b[i].temp_air_c);
    }
    const auto c = make_year(8);
    int diff = 0;
    for (std::size_t i = 0; i < a.size(); i += 97)
        if (a[i].ghi != c[i].ghi) ++diff;
    EXPECT_GT(diff, 50);
}

TEST(Synthetic, YearlyGhiInTorinoBand) {
    // Measured Torino GHI is ~1250-1450 kWh/m^2/yr; the synthetic climate
    // must land in a plausible band for the absolute MWh of Table I to be
    // meaningful.
    const auto env = make_year();
    const WeatherSummary s = summarize(env, year_grid());
    EXPECT_GT(s.ghi_kwh_m2, 1050.0);
    EXPECT_LT(s.ghi_kwh_m2, 1650.0);
    // Diffuse energy fraction for such a climate: ~35-55%.
    EXPECT_GT(s.diffuse_fraction, 0.25);
    EXPECT_LT(s.diffuse_fraction, 0.60);
}

TEST(Synthetic, TemperatureSeasonalityAndRange) {
    const auto env = make_year();
    const TimeGrid grid = year_grid();
    double january = 0.0;
    double july = 0.0;
    int jan_n = 0;
    int jul_n = 0;
    for (long s = 0; s < grid.total_steps(); ++s) {
        const int doy = grid.day_of_year(s);
        if (doy <= 31) {
            january += env[static_cast<std::size_t>(s)].temp_air_c;
            ++jan_n;
        } else if (doy > 181 && doy <= 212) {
            july += env[static_cast<std::size_t>(s)].temp_air_c;
            ++jul_n;
        }
    }
    january /= jan_n;
    july /= jul_n;
    EXPECT_LT(january, 8.0);
    EXPECT_GT(july, 19.0);
    const WeatherSummary s = summarize(env, grid);
    EXPECT_GT(s.min_temp_c, -25.0);
    EXPECT_LT(s.max_temp_c, 45.0);
}

TEST(Synthetic, NightIsDarkAndDaysVary) {
    const auto env = make_year();
    const TimeGrid grid = year_grid();
    // Midnight samples must be zero irradiance.
    for (long day = 0; day < 365; day += 30) {
        const long midnight = day * grid.steps_per_day();
        EXPECT_DOUBLE_EQ(env[static_cast<std::size_t>(midnight)].ghi, 0.0);
    }
    // Noon GHI across summer days must show cloud variability.
    double lo = 1e9;
    double hi = 0.0;
    for (int day = 150; day < 240; ++day) {
        const long noon = day * grid.steps_per_day() + 48;
        const double g = env[static_cast<std::size_t>(noon)].ghi;
        lo = std::min(lo, g);
        hi = std::max(hi, g);
    }
    EXPECT_LT(lo, 0.55 * hi);  // some clouded days
    EXPECT_GT(hi, 600.0);      // some clear days
}

TEST(Synthetic, PhysicallyConsistentSeries) {
    const auto env = make_year();
    const long bad =
        count_inconsistent_samples(env, year_grid(), kTorino, 0.05);
    // Closure is enforced by construction; tolerate a handful of samples
    // at sunrise/sunset numerical edges.
    EXPECT_LT(bad, year_grid().total_steps() / 200);
}

TEST(Synthetic, OptionValidation) {
    SyntheticWeatherOptions bad;
    bad.state_persistence = 1.0;
    EXPECT_THROW(generate_synthetic_weather(kTorino, year_grid(), bad),
                 InvalidArgument);
    SyntheticWeatherOptions bad2;
    bad2.climate.p_clear[3] = 0.9;
    bad2.climate.p_overcast[3] = 0.4;  // sums over 1
    EXPECT_THROW(generate_synthetic_weather(kTorino, year_grid(), bad2),
                 InvalidArgument);
}

TEST(StationCsv, FullRoundTrip) {
    const TimeGrid grid(60, 100, 2);
    SyntheticWeatherOptions opt;
    opt.seed = 3;
    const auto env = generate_synthetic_weather(kTorino, grid, opt);
    const std::string path = ::testing::TempDir() + "/pvfp_weather.csv";
    write_station_csv(path, env, grid);
    const auto back = read_station_csv(path, grid);
    ASSERT_EQ(back.size(), env.size());
    for (std::size_t i = 0; i < env.size(); i += 5) {
        EXPECT_NEAR(back[i].ghi, env[i].ghi, 0.01);
        EXPECT_NEAR(back[i].dni, env[i].dni, 0.01);
        EXPECT_NEAR(back[i].temp_air_c, env[i].temp_air_c, 0.01);
    }
    std::remove(path.c_str());
}

TEST(StationCsv, GhiOnlyImportReconstructsComponents) {
    const TimeGrid grid(60, 172, 2);
    SyntheticWeatherOptions opt;
    opt.seed = 4;
    const auto env = generate_synthetic_weather(kTorino, grid, opt);

    // Write a GHI-only file by hand.
    const std::string path = ::testing::TempDir() + "/pvfp_ghi_only.csv";
    {
        CsvTable t({"day", "hour", "ghi", "temp_air_c"});
        for (long s = 0; s < grid.total_steps(); ++s) {
            t.add_row({std::to_string(grid.day_of_year(s)),
                       TextTable::num(grid.hour_of_day(s), 4),
                       TextTable::num(env[static_cast<std::size_t>(s)].ghi, 2),
                       TextTable::num(
                           env[static_cast<std::size_t>(s)].temp_air_c, 2)});
        }
        t.write_file(path);
    }
    for (const auto model :
         {DecompositionModel::Erbs, DecompositionModel::Engerer2}) {
        const auto back =
            read_station_csv_ghi_only(path, grid, kTorino, model, 3.0, 240.0);
        ASSERT_EQ(back.size(), env.size());
        // Closure must hold; components are model-reconstructed so only
        // rough agreement with the original is expected.
        const long bad = count_inconsistent_samples(back, grid, kTorino);
        EXPECT_LT(bad, grid.total_steps() / 20);
    }
    std::remove(path.c_str());
}

TEST(StationCsv, RowCountMismatchThrows) {
    const TimeGrid grid(60, 1, 1);
    const auto env = generate_synthetic_weather(kTorino, grid, {});
    const std::string path = ::testing::TempDir() + "/pvfp_weather2.csv";
    write_station_csv(path, env, grid);
    const TimeGrid longer(60, 1, 2);
    EXPECT_THROW(read_station_csv(path, longer), IoError);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace pvfp::weather

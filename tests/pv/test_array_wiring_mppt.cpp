/// Tests for panel aggregation (the paper's min-rules), the wiring
/// overhead model (Fig. 4, Section V-C numbers), and the MPPT utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/pv/array.hpp"
#include "pvfp/pv/mppt.hpp"
#include "pvfp/pv/one_diode.hpp"
#include "pvfp/pv/wiring.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::pv {
namespace {

OperatingPoint op(double p, double v) { return {p, v, v > 0 ? p / v : 0.0}; }

// ------------------------------------------------------------- array --

TEST(Aggregate, UniformModulesHaveNoMismatchLoss) {
    // 2 strings x 3 series of identical modules: panel power equals the
    // ideal sum.
    std::vector<OperatingPoint> points(6, op(100.0, 24.0));
    const Topology topo{3, 2};
    const PanelOperating panel = aggregate_panel(points, topo);
    EXPECT_NEAR(panel.voltage_v, 72.0, 1e-12);
    EXPECT_NEAR(panel.current_a, 2.0 * 100.0 / 24.0, 1e-12);
    EXPECT_NEAR(panel.power_w, 600.0, 1e-9);
    EXPECT_NEAR(panel.mismatch_loss_w, 0.0, 1e-9);
    EXPECT_NEAR(panel.ideal_power_w, 600.0, 1e-9);
}

TEST(Aggregate, WeakModuleBottlenecksItsString) {
    // Paper Section V-B: a "weak" module determines the current of the
    // entire series string.
    std::vector<OperatingPoint> points(4, op(100.0, 24.0));
    points[1] = op(25.0, 23.0);  // weak module in string 0
    const Topology topo{2, 2};
    const PanelOperating panel = aggregate_panel(points, topo);
    // String 0 current = weak current; string 1 unaffected.
    const double weak_current = 25.0 / 23.0;
    EXPECT_NEAR(panel.strings[0].current_a, weak_current, 1e-12);
    EXPECT_NEAR(panel.strings[1].current_a, 100.0 / 24.0, 1e-12);
    EXPECT_GT(panel.mismatch_loss_w, 50.0);  // big topology loss
}

TEST(Aggregate, ParallelStringsShareMinimumVoltage) {
    std::vector<OperatingPoint> points{op(100.0, 30.0), op(100.0, 20.0)};
    const Topology topo{1, 2};
    const PanelOperating panel = aggregate_panel(points, topo);
    EXPECT_DOUBLE_EQ(panel.voltage_v, 20.0);
    EXPECT_NEAR(panel.current_a, 100.0 / 30.0 + 100.0 / 20.0, 1e-12);
}

TEST(Aggregate, SeriesFirstIndexing) {
    // Index j*m+i: verify the weak module lands in the intended string.
    std::vector<OperatingPoint> points(6, op(100.0, 24.0));
    points[4] = op(10.0, 22.0);  // j=1 (second string), i=1
    const Topology topo{3, 2};
    const PanelOperating panel = aggregate_panel(points, topo);
    EXPECT_NEAR(panel.strings[0].current_a, 100.0 / 24.0, 1e-12);
    EXPECT_NEAR(panel.strings[1].current_a, 10.0 / 22.0, 1e-12);
}

TEST(Aggregate, DarkPanelIsZero) {
    std::vector<OperatingPoint> points(4);
    const PanelOperating panel = aggregate_panel(points, Topology{2, 2});
    EXPECT_DOUBLE_EQ(panel.power_w, 0.0);
    EXPECT_DOUBLE_EQ(panel.mismatch_loss_w, 0.0);
}

TEST(Aggregate, TopologyValidation) {
    std::vector<OperatingPoint> points(4);
    EXPECT_THROW(aggregate_panel(points, Topology{3, 2}), InvalidArgument);
    EXPECT_THROW(aggregate_panel(points, Topology{0, 4}), InvalidArgument);
    EXPECT_NO_THROW(check_topology(Topology{8, 4}, 32));
    EXPECT_THROW(check_topology(Topology{8, 4}, 16), InvalidArgument);
}

// ------------------------------------------------------------ wiring --

TEST(Wiring, CompactAdjacentStringNeedsNoExtraCable) {
    // Modules side by side, centers one module-width (1.6 m) apart: the
    // default connector covers it (paper Fig. 4a).
    const WiringSpec spec;
    std::vector<ModulePosition> mods{{0.8, 0.4}, {2.4, 0.4}, {4.0, 0.4}};
    EXPECT_DOUBLE_EQ(string_extra_length(mods, spec), 0.0);
}

TEST(Wiring, DisplacementAddsManhattanExtra) {
    // Paper Fig. 4b: extra = dh + dv - L.
    const WiringSpec spec;  // L = 1.6
    std::vector<ModulePosition> mods{{0.0, 0.0}, {2.0, 1.0}};
    EXPECT_NEAR(string_extra_length(mods, spec), 2.0 + 1.0 - 1.6, 1e-12);
    // Never negative.
    std::vector<ModulePosition> close{{0.0, 0.0}, {0.5, 0.0}};
    EXPECT_DOUBLE_EQ(string_extra_length(close, spec), 0.0);
}

TEST(Wiring, PanelSplitsByString) {
    const WiringSpec spec;
    // 2 strings of 2: string 0 compact, string 1 stretched.
    std::vector<ModulePosition> mods{
        {0.8, 0.4}, {2.4, 0.4},       // string 0
        {0.8, 2.0}, {6.0, 4.0},       // string 1: dh=5.2, dv=2.0
    };
    const auto lengths = panel_extra_lengths(mods, Topology{2, 2}, spec);
    ASSERT_EQ(lengths.size(), 2u);
    EXPECT_DOUBLE_EQ(lengths[0], 0.0);
    EXPECT_NEAR(lengths[1], 5.2 + 2.0 - 1.6, 1e-12);
}

TEST(Wiring, PaperSectionVcNumbers) {
    // AWG10 at 7 mOhm/m carrying 4 A: 0.112 W per meter of extra cable —
    // the paper's RI^2 ~ 0.11 W/m.
    const WiringSpec spec;
    EXPECT_NEAR(wiring_power_loss(1.0, 4.0, spec), 0.112, 1e-12);
    // 20 m of extra cable at 1 $/m: 20 $.
    std::vector<double> lengths{12.0, 8.0};
    EXPECT_DOUBLE_EQ(wiring_cost(lengths, spec), 20.0);
}

TEST(Wiring, LossQuadraticInCurrent) {
    const WiringSpec spec;
    EXPECT_NEAR(wiring_power_loss(10.0, 8.0, spec) /
                    wiring_power_loss(10.0, 4.0, spec),
                4.0, 1e-12);
    EXPECT_DOUBLE_EQ(wiring_power_loss(0.0, 10.0, spec), 0.0);
    EXPECT_THROW(wiring_power_loss(-1.0, 1.0, spec), InvalidArgument);
}

TEST(Wiring, SingleModuleStringHasNoWiring) {
    const WiringSpec spec;
    std::vector<ModulePosition> one{{3.0, 3.0}};
    EXPECT_DOUBLE_EQ(string_extra_length(one, spec), 0.0);
}

// -------------------------------------------------------------- mppt --

TEST(GoldenSection, FindsParabolaMaximum) {
    const double x = golden_section_max(
        [](double v) { return -(v - 3.7) * (v - 3.7) + 10.0; }, 0.0, 10.0);
    EXPECT_NEAR(x, 3.7, 1e-6);
    EXPECT_THROW(golden_section_max([](double) { return 0.0; }, 1.0, 0.0),
                 InvalidArgument);
}

TEST(TrackMpp, MatchesOneDiodeMppOnSmoothCurve) {
    const OneDiodeModel model = OneDiodeModel::fit_datasheet(ModuleSpec{});
    const double voc = model.open_circuit_voltage(1000.0, 25.0);
    const OperatingPoint scanned = track_mpp(
        [&](double v) { return std::max(0.0, model.current_at(v, 1000.0, 25.0)); },
        voc);
    const OperatingPoint direct = model.max_power_point(1000.0, 25.0);
    EXPECT_NEAR(scanned.power_w, direct.power_w, 0.2);
    EXPECT_NEAR(scanned.voltage_v, direct.voltage_v, 0.3);
}

TEST(TrackMpp, FindsGlobalMaxOfMultiModalCurve) {
    // Synthetic two-hump P(v) curve mimicking a bypass-diode kink:
    // local max P~3.3 at v~3.3, global max P~6.7 at v=5.
    const auto current = [](double v) {
        if (v < 4.0) return 2.0 - 0.3 * v;
        return std::max(0.0, 1.6 * (10.0 - v) / (10.0 - 4.0));
    };
    const OperatingPoint mpp = track_mpp(current, 10.0);
    EXPECT_GT(mpp.voltage_v, 4.0);  // picked the global hump
    EXPECT_NEAR(mpp.voltage_v, 5.0, 0.2);
}

TEST(MpptEfficiency, RatioAndEdgeCases) {
    EXPECT_DOUBLE_EQ(mppt_efficiency(80.0, 100.0), 0.8);
    EXPECT_DOUBLE_EQ(mppt_efficiency(0.0, 0.0), 1.0);
    EXPECT_THROW(mppt_efficiency(-1.0, 2.0), InvalidArgument);
}

}  // namespace
}  // namespace pvfp::pv

/// Tests for the empirical module model: STC reference point (the paper's
/// datasheet anchor), derating trends, and the Tact coupling.

#include <gtest/gtest.h>

#include "pvfp/pv/module.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::pv {
namespace {

TEST(EmpiricalModule, ReproducesStcDatasheetPoint) {
    const EmpiricalModuleModel model;
    // G = 1000 W/m^2, Tact = 25 C: exactly 165 W (corrected power
    // coefficients hit the datasheet point); the voltage equation as
    // printed gives 24 * 0.995 = 23.88 V, 0.5% under the Vmp_ref anchor.
    EXPECT_NEAR(model.power(1000.0, 25.0), 165.0, 1e-9);
    EXPECT_NEAR(model.voltage(1000.0, 25.0), 23.88, 1e-9);
    EXPECT_NEAR(model.current(1000.0, 25.0), 165.0 / 23.88, 1e-9);
    EXPECT_NEAR(model.area_m2(), 1.28, 1e-12);
}

TEST(EmpiricalModule, PowerLinearInIrradiance) {
    const EmpiricalModuleModel model;
    const double p500 = model.power(500.0, 25.0);
    const double p1000 = model.power(1000.0, 25.0);
    EXPECT_NEAR(p1000 / p500, 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(model.power(0.0, 25.0), 0.0);
}

TEST(EmpiricalModule, PowerTemperatureCoefficientMatchesDatasheet) {
    const EmpiricalModuleModel model;
    const double p25 = model.power(1000.0, 25.0);
    const double p35 = model.power(1000.0, 35.0);
    // -0.48 %/K relative to the STC value.
    EXPECT_NEAR((p35 - p25) / p25 / 10.0, -0.0048, 1e-6);
}

TEST(EmpiricalModule, VoltageWeaklyDependentOnIrradiance) {
    // Paper: "the maximum power voltage of the module is roughly
    // independent of the irradiance" — the G-term swings ~3% over
    // [200, 1000] W/m^2.
    const EmpiricalModuleModel model;
    const double v200 = model.voltage(200.0, 25.0);
    const double v1000 = model.voltage(1000.0, 25.0);
    EXPECT_LT(std::abs(v1000 - v200) / v1000, 0.12);
    EXPECT_GT(v1000, v200);  // slightly increasing
}

TEST(EmpiricalModule, FivefoldPowerSwingOverPaperRange) {
    // Paper Section III-C: over G in [200, 1000] W/m^2 power changes ~5x.
    const EmpiricalModuleModel model;
    const double ratio =
        model.power(1000.0, 25.0) / model.power(200.0, 25.0);
    EXPECT_NEAR(ratio, 5.0, 0.01);
}

TEST(EmpiricalModule, TemperatureSwingWithinTwentyPercent) {
    // Paper: "typical T ranges only change power by ±20% at most".
    const EmpiricalModuleModel model;
    const double p25 = model.power(800.0, 25.0);
    const double p65 = model.power(800.0, 65.0);  // hot summer module
    const double p0 = model.power(800.0, 0.0);    // cold winter module
    EXPECT_GT(p65 / p25, 0.78);
    EXPECT_LT(p0 / p25, 1.15);
}

TEST(EmpiricalModule, ClampsInsteadOfGoingNegative) {
    const EmpiricalModuleModel model;
    // Absurdly hot: derating would go negative; the model clamps at 0.
    EXPECT_DOUBLE_EQ(model.power(1000.0, 300.0), 0.0);
    EXPECT_DOUBLE_EQ(model.voltage(1000.0, 400.0), 0.0);
    EXPECT_DOUBLE_EQ(model.current(1000.0, 400.0), 0.0);
    // No-irradiance voltage is defined as 0 (no operating point).
    EXPECT_DOUBLE_EQ(model.voltage(0.0, 25.0), 0.0);
}

TEST(EmpiricalModule, OperatingPointConsistent) {
    const EmpiricalModuleModel model;
    const OperatingPoint op = model.operating_point(730.0, 41.0);
    EXPECT_NEAR(op.power_w, op.voltage_v * op.current_a, 1e-9);
    EXPECT_GT(op.power_w, 0.0);
}

TEST(EmpiricalModule, ActualTemperatureModel) {
    // Tact = T + k*G with k = alpha/h_c (paper Sec III-B1).
    EXPECT_DOUBLE_EQ(
        EmpiricalModuleModel::actual_temperature(20.0, 900.0, 1.0 / 30.0),
        50.0);
    EXPECT_DOUBLE_EQ(EmpiricalModuleModel::actual_temperature(20.0, 0.0, 0.1),
                     20.0);
    EXPECT_THROW(
        EmpiricalModuleModel::actual_temperature(20.0, -1.0, 0.03),
        InvalidArgument);
    EXPECT_THROW(
        EmpiricalModuleModel::actual_temperature(20.0, 1.0, -0.03),
        InvalidArgument);
}

TEST(EmpiricalModule, NegativeIrradianceRejected) {
    const EmpiricalModuleModel model;
    EXPECT_THROW(model.power(-1.0, 25.0), InvalidArgument);
    EXPECT_THROW(model.voltage(-1.0, 25.0), InvalidArgument);
}

TEST(EmpiricalModule, SpecValidation) {
    ModuleSpec bad;
    bad.width_m = 0.0;
    EXPECT_THROW(EmpiricalModuleModel{bad}, InvalidArgument);
    ModuleSpec bad2;
    bad2.cells_in_series = 0;
    EXPECT_THROW(EmpiricalModuleModel{bad2}, InvalidArgument);
}

/// Monotonicity sweep: dP/dG > 0 and dP/dT < 0 everywhere sensible.
class ModuleMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ModuleMonotone, PowerMonotoneInGAndT) {
    const EmpiricalModuleModel model;
    const double t = GetParam();
    double prev = model.power(0.0, t);
    for (double g = 50.0; g <= 1200.0; g += 50.0) {
        const double cur = model.power(g, t);
        EXPECT_GT(cur, prev) << "g=" << g << " t=" << t;
        prev = cur;
    }
    double prev_t = model.power(800.0, -10.0);
    for (double tt = 0.0; tt <= 80.0; tt += 10.0) {
        const double cur = model.power(800.0, tt);
        EXPECT_LT(cur, prev_t) << "t=" << tt;
        prev_t = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Temperatures, ModuleMonotone,
                         ::testing::Values(-10.0, 0.0, 25.0, 50.0, 75.0));

}  // namespace
}  // namespace pvfp::pv

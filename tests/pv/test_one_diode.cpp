/// Tests for the one-diode model: datasheet fit, I-V curve shape (paper
/// Fig. 2a), scaling with G and T, and bypass-diode partial shading.

#include <gtest/gtest.h>

#include <cmath>

#include "pvfp/pv/one_diode.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::pv {
namespace {

OneDiodeModel fitted() { return OneDiodeModel::fit_datasheet(ModuleSpec{}); }

TEST(OneDiode, FitHitsDatasheetCorners) {
    const ModuleSpec spec;
    const OneDiodeModel model = fitted();
    EXPECT_NEAR(model.short_circuit_current(1000.0, 25.0), spec.isc_ref_a,
                0.05);
    EXPECT_NEAR(model.open_circuit_voltage(1000.0, 25.0), spec.voc_ref_v,
                0.25);
    const OperatingPoint mpp = model.max_power_point(1000.0, 25.0);
    EXPECT_NEAR(mpp.power_w, spec.p_max_ref_w, 1.0);
    // Vmp in the plausible band around the datasheet's 24 V.
    EXPECT_GT(mpp.voltage_v, 21.0);
    EXPECT_LT(mpp.voltage_v, 27.0);
}

TEST(OneDiode, IvCurveMonotoneDecreasing) {
    const OneDiodeModel model = fitted();
    const auto curve = model.iv_curve(800.0, 40.0, 60);
    ASSERT_EQ(curve.size(), 60u);
    for (std::size_t k = 1; k < curve.size(); ++k) {
        EXPECT_LT(curve[k].i, curve[k - 1].i + 1e-9);
        EXPECT_GT(curve[k].v, curve[k - 1].v);
    }
    // Endpoints: Isc at V=0, ~0 A at Voc.
    EXPECT_NEAR(curve.front().i,
                model.short_circuit_current(800.0, 40.0), 1e-6);
    EXPECT_NEAR(curve.back().i, 0.0, 0.02);
}

TEST(OneDiode, Fig2aIrradianceTrends) {
    // Paper Fig. 2(a) dotted line: G up => Isc proportional, Voc grows
    // logarithmically (slowly).
    const OneDiodeModel model = fitted();
    const double isc_half = model.short_circuit_current(500.0, 25.0);
    const double isc_full = model.short_circuit_current(1000.0, 25.0);
    EXPECT_NEAR(isc_full / isc_half, 2.0, 0.02);
    const double voc_half = model.open_circuit_voltage(500.0, 25.0);
    const double voc_full = model.open_circuit_voltage(1000.0, 25.0);
    EXPECT_GT(voc_full, voc_half);
    EXPECT_LT(voc_full - voc_half, 2.0);  // log growth: < 2 V per doubling
}

TEST(OneDiode, Fig2aTemperatureTrends) {
    // Paper Fig. 2(a) solid line: T up => Isc slightly up, Voc down.
    const OneDiodeModel model = fitted();
    const double isc_cold = model.short_circuit_current(1000.0, 10.0);
    const double isc_hot = model.short_circuit_current(1000.0, 60.0);
    EXPECT_GT(isc_hot, isc_cold);
    EXPECT_LT((isc_hot - isc_cold) / isc_cold, 0.05);
    const double voc_cold = model.open_circuit_voltage(1000.0, 10.0);
    const double voc_hot = model.open_circuit_voltage(1000.0, 60.0);
    EXPECT_LT(voc_hot, voc_cold);
    // Physical band: -1.5..-3.8 mV/K per cell * 50 cells * 50 K.
    EXPECT_GT(voc_cold - voc_hot, 4.0);
    EXPECT_LT(voc_cold - voc_hot, 9.5);
}

TEST(OneDiode, MppPowerDropsWithTemperature) {
    const OneDiodeModel model = fitted();
    const double p25 = model.max_power_point(1000.0, 25.0).power_w;
    const double p60 = model.max_power_point(1000.0, 60.0).power_w;
    EXPECT_LT(p60, p25);
    // Temperature coefficient in the physical band [-0.75, -0.20] %/K
    // (the plain 5-parameter model runs a touch steeper than datasheets).
    const double coeff = (p60 - p25) / p25 / 35.0;
    EXPECT_GT(coeff, -0.0075);
    EXPECT_LT(coeff, -0.0020);
}

TEST(OneDiode, VoltageAtInvertsCurrentAt) {
    const OneDiodeModel model = fitted();
    for (double v : {5.0, 15.0, 22.0, 26.0}) {
        const double i = model.current_at(v, 900.0, 30.0);
        const double v_back = model.voltage_at(i, 900.0, 30.0);
        EXPECT_NEAR(v_back, v, 1e-4) << "v=" << v;
    }
    // Demanding more than Isc returns the floor voltage.
    const double isc = model.short_circuit_current(900.0, 30.0);
    EXPECT_LE(model.voltage_at(isc * 1.2, 900.0, 30.0), -0.99);
}

TEST(OneDiode, DarkModuleProducesNothing) {
    const OneDiodeModel model = fitted();
    EXPECT_DOUBLE_EQ(model.open_circuit_voltage(0.0, 25.0), 0.0);
    const OperatingPoint mpp = model.max_power_point(0.0, 25.0);
    EXPECT_DOUBLE_EQ(mpp.power_w, 0.0);
}

TEST(OneDiode, ParameterValidation) {
    OneDiodeParams bad;
    bad.ideality = 3.0;
    EXPECT_THROW(OneDiodeModel{bad}, InvalidArgument);
    OneDiodeParams bad2;
    bad2.rsh_ohm = 0.0;
    EXPECT_THROW(OneDiodeModel{bad2}, InvalidArgument);
    OneDiodeParams bad3;
    bad3.cells_in_series = 0;
    EXPECT_THROW(OneDiodeModel{bad3}, InvalidArgument);
    const OneDiodeModel model = fitted();
    EXPECT_THROW(model.current_at(1.0, -5.0, 25.0), InvalidArgument);
}

TEST(BypassedModule, UniformIrradianceMatchesPlainModel) {
    const OneDiodeModel model = fitted();
    const BypassedModule bypassed(model, 2);
    const std::vector<double> uniform{800.0, 800.0};
    const OperatingPoint mpp_b = bypassed.max_power_point(uniform, 30.0);
    const OperatingPoint mpp_p = model.max_power_point(800.0, 30.0);
    EXPECT_NEAR(mpp_b.power_w, mpp_p.power_w, 0.03 * mpp_p.power_w);
}

TEST(BypassedModule, PartialShadingActivatesBypass) {
    const OneDiodeModel model = fitted();
    const BypassedModule bypassed(model, 2);
    // One substring at 20%: without bypass the whole module would be
    // dragged to ~20%; with bypass it keeps > 40% of full power.
    const OperatingPoint full =
        bypassed.max_power_point({1000.0, 1000.0}, 25.0);
    const OperatingPoint shaded =
        bypassed.max_power_point({1000.0, 200.0}, 25.0);
    EXPECT_LT(shaded.power_w, full.power_w);
    EXPECT_GT(shaded.power_w, 0.40 * full.power_w);
}

TEST(BypassedModule, VoltageClampedByBypassDiode) {
    const OneDiodeModel model = fitted();
    const BypassedModule bypassed(model, 2, 0.5);
    // Force a current the dark substring cannot carry: its voltage clamps
    // at -0.5 V instead of going strongly negative.
    // Half-module substring: half the cells and half the lumped Rs/Rsh.
    const double v = bypassed.voltage_at(3.0, {1000.0, 0.0}, 25.0);
    const double v_lit =
        OneDiodeModel(OneDiodeParams{
            model.params().iph_ref_a, model.params().i0_ref_a,
            model.params().ideality, model.params().rs_ohm / 2.0,
            model.params().rsh_ohm / 2.0,
            model.params().cells_in_series / 2,
            model.params().isc_temp_coeff, model.params().bandgap_ev})
            .voltage_at(3.0, 1000.0, 25.0);
    EXPECT_NEAR(v, v_lit - 0.5, 0.05);
}

TEST(BypassedModule, Validation) {
    const OneDiodeModel model = fitted();
    EXPECT_THROW(BypassedModule(model, 0), InvalidArgument);
    EXPECT_THROW(BypassedModule(model, 3), InvalidArgument);  // 50 % 3 != 0
    const BypassedModule ok(model, 2);
    EXPECT_THROW(ok.max_power_point({1000.0}, 25.0), InvalidArgument);
}

}  // namespace
}  // namespace pvfp::pv

/// Differential harness for the IncrementalEvaluator: thousands of seeded
/// random move/swap/rollback steps across roof-library scenarios, with
/// the committed incremental totals checked against a fresh full
/// evaluate_floorplan at every point (<= 1e-9 kWh), at 1 and 8 threads —
/// and the two thread counts must agree bitwise, like every other
/// deterministic pipeline stage (PR-2 contract).

#include <gtest/gtest.h>

#include <vector>

#include "../test_helpers.hpp"
#include "pvfp/core/evaluator.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/core/pipeline.hpp"
#include "pvfp/core/roof_library.hpp"
#include "pvfp/util/parallel.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp::core {
namespace {

constexpr int kStepsPerScenario = 1000;
constexpr double kTolKwh = 1e-9;

void expect_result_matches(const EvaluationResult& inc,
                           const EvaluationResult& full, int step) {
    EXPECT_NEAR(inc.energy_kwh, full.energy_kwh, kTolKwh) << "step " << step;
    EXPECT_NEAR(inc.ideal_energy_kwh, full.ideal_energy_kwh, kTolKwh);
    EXPECT_NEAR(inc.mismatch_loss_kwh, full.mismatch_loss_kwh, kTolKwh);
    EXPECT_NEAR(inc.wiring_loss_kwh, full.wiring_loss_kwh, kTolKwh);
    EXPECT_NEAR(inc.extra_cable_m, full.extra_cable_m, 1e-12);
    ASSERT_EQ(inc.strings.size(), full.strings.size());
    for (std::size_t j = 0; j < full.strings.size(); ++j) {
        EXPECT_NEAR(inc.strings[j].energy_kwh, full.strings[j].energy_kwh,
                    kTolKwh);
        EXPECT_NEAR(inc.strings[j].wiring_loss_kwh,
                    full.strings[j].wiring_loss_kwh, kTolKwh);
    }
}

struct Trace {
    std::vector<double> energies;
    Floorplan final_plan;
};

/// Drive one seeded random move/swap/rollback sequence.  After *every*
/// step (commit, rollback, or rejected proposal) the committed state is
/// compared against a fresh full evaluation of the committed plan.
Trace run_trace(const PreparedScenario& p, const Floorplan& initial,
                const EvaluationOptions& eval, std::uint64_t seed) {
    IncrementalEvaluator ev(initial, p.area, p.field, p.model, eval);
    const auto anchors = enumerate_anchors(p.area, initial.geometry);
    Rng rng(seed);
    Trace trace;
    trace.energies.reserve(kStepsPerScenario);
    const std::size_t n = initial.modules.size();
    for (int step = 0; step < kStepsPerScenario; ++step) {
        const std::uint64_t kind = rng.uniform_int(100);
        if (kind < 45) {
            // Relocation, committed or rolled back at random.
            const int i = static_cast<int>(rng.uniform_int(n));
            const ModulePlacement& target =
                anchors[static_cast<std::size_t>(
                    rng.uniform_int(anchors.size()))];
            if (ev.move_feasible(i, target)) {
                ev.delta_move(i, target);
                if (rng.bernoulli(0.7))
                    ev.commit();
                else
                    ev.rollback();
            }
        } else if (kind < 75 && n >= 2) {
            // Swap, committed or rolled back at random.
            const int i = static_cast<int>(rng.uniform_int(n));
            int j = static_cast<int>(rng.uniform_int(n - 1));
            if (j >= i) ++j;
            ev.delta_swap(i, j);
            if (rng.bernoulli(0.7))
                ev.commit();
            else
                ev.rollback();
        } else {
            // Adversarial: always roll the proposal back.
            const int i = static_cast<int>(rng.uniform_int(n));
            const ModulePlacement& target =
                anchors[static_cast<std::size_t>(
                    rng.uniform_int(anchors.size()))];
            if (ev.move_feasible(i, target)) {
                ev.delta_move(i, target);
                ev.rollback();
            }
        }
        trace.energies.push_back(ev.energy_kwh());
        const EvaluationResult full = evaluate_floorplan(
            ev.plan(), p.area, p.field, p.model, eval);
        expect_result_matches(ev.result(), full, step);
    }
    EXPECT_EQ(ev.stats().full_passes, 1);
    trace.final_plan = ev.plan();
    return trace;
}

/// Run the trace at 1 and 8 threads: the harness's tolerance contract
/// holds at both, and the two runs must be bitwise-identical.
void run_scenario(const PreparedScenario& p, const pv::Topology& topology,
                  const EvaluationOptions& eval, std::uint64_t seed) {
    const Floorplan initial =
        place_greedy(p.area, p.suitability.suitability, p.geometry,
                     topology);
    set_thread_count(1);
    const Trace t1 = run_trace(p, initial, eval, seed);
    set_thread_count(8);
    const Trace t8 = run_trace(p, initial, eval, seed);
    set_thread_count(0);
    ASSERT_EQ(t1.energies.size(), t8.energies.size());
    for (std::size_t k = 0; k < t1.energies.size(); ++k) {
        // Bitwise equality across thread counts: exact, not NEAR.
        ASSERT_EQ(t1.energies[k], t8.energies[k]) << "step " << k;
    }
    EXPECT_EQ(t1.final_plan.modules, t8.final_plan.modules);
}

TEST(DeltaEquivalence, ToyRoofThousandStepTrace) {
    ScenarioConfig config;
    config.grid = TimeGrid(60, 80, 10);
    config.weather.seed = 3;
    config.horizon.azimuth_sectors = 12;
    const PreparedScenario prepared = prepare_scenario(make_toy(), config);
    run_scenario(prepared, pv::Topology{2, 2}, {}, /*seed=*/101);
}

TEST(DeltaEquivalence, ResidentialRoofStridedTrace) {
    ScenarioConfig config;
    config.grid = TimeGrid(60, 172, 8);
    config.weather.seed = 29;
    config.horizon.azimuth_sectors = 12;
    config.cell_size = 0.4;  // coarser virtual grid: k1 = 4, k2 = 2
    const PreparedScenario prepared =
        prepare_scenario(make_residential(), config);
    EvaluationOptions eval;
    eval.step_stride = 2;
    run_scenario(prepared, pv::Topology{3, 2}, eval, /*seed=*/202);
}

}  // namespace
}  // namespace pvfp::core

/// Pipeline behaviour under configuration variants: sky model, albedo,
/// thermal coupling, suitable-area options — cheap end-to-end checks that
/// every exposed knob actually reaches the physics.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/error.hpp"

namespace pvfp::core {
namespace {

ScenarioConfig fast_config() {
    ScenarioConfig config;
    config.grid = TimeGrid(120, 80, 30);  // spring month, 2 h steps
    config.weather.seed = 9;
    config.horizon.azimuth_sectors = 24;
    return config;
}

double toy_energy(const ScenarioConfig& config) {
    const auto prepared = prepare_scenario(make_toy(), config);
    const auto plan = place_greedy(prepared.area,
                                   prepared.suitability.suitability,
                                   prepared.geometry, pv::Topology{2, 1});
    return evaluate_floorplan(plan, prepared.area, prepared.field,
                              prepared.model)
        .energy_kwh;
}

TEST(ConfigVariants, SkyModelChangesButDoesNotBreakEnergy) {
    ScenarioConfig iso = fast_config();
    iso.field.sky_model = solar::SkyModel::Isotropic;
    ScenarioConfig hd = fast_config();
    hd.field.sky_model = solar::SkyModel::HayDavies;
    const double e_iso = toy_energy(iso);
    const double e_hd = toy_energy(hd);
    EXPECT_GT(e_iso, 0.0);
    EXPECT_GT(e_hd, 0.0);
    // The models differ, but only by the circumsolar treatment: within
    // ~10% of each other on a mixed sky.
    EXPECT_NE(e_iso, e_hd);
    EXPECT_NEAR(e_hd / e_iso, 1.0, 0.10);
}

TEST(ConfigVariants, AlbedoMonotonicallyAddsEnergy) {
    ScenarioConfig low = fast_config();
    low.field.albedo = 0.0;
    ScenarioConfig high = fast_config();
    high.field.albedo = 0.5;
    const double e_low = toy_energy(low);
    const double e_high = toy_energy(high);
    EXPECT_GT(e_high, e_low);
    // Ground reflection onto a 20-deg tilt is a small term (< 10%).
    EXPECT_LT(e_high, 1.10 * e_low);
}

TEST(ConfigVariants, ThermalCouplingCostsEnergy) {
    ScenarioConfig cold = fast_config();
    cold.field.thermal_k = 0.0;  // module at air temperature
    ScenarioConfig hot = fast_config();
    hot.field.thermal_k = 1.0 / 15.0;  // poorly-ventilated mounting
    const double e_cold = toy_energy(cold);
    const double e_hot = toy_energy(hot);
    // Hotter modules derate: energy strictly lower.
    EXPECT_LT(e_hot, e_cold);
    EXPECT_GT(e_hot, 0.75 * e_cold);
}

TEST(ConfigVariants, ThermalKZeroMeansModuleAtAirTemperature) {
    ScenarioConfig config = fast_config();
    config.field.thermal_k = 0.0;
    const auto prepared = prepare_scenario(make_toy(), config);
    for (long s = 0; s < prepared.field.steps(); s += 17) {
        EXPECT_DOUBLE_EQ(prepared.field.cell_module_temperature(1, 1, s),
                         prepared.field.air_temperature(s));
    }
}

TEST(ConfigVariants, ClearanceShrinksUsableArea) {
    ScenarioConfig tight = fast_config();
    tight.area.clearance = 0.0;
    ScenarioConfig wide = fast_config();
    wide.area.clearance = 1.0;
    const auto a = prepare_scenario(make_toy(), tight);
    const auto b = prepare_scenario(make_toy(), wide);
    EXPECT_GT(a.area.valid_count, b.area.valid_count);
}

TEST(ConfigVariants, LargestComponentOptionDropsIslands) {
    // The toy roof's chimney does not disconnect the area, so the option
    // must be a no-op there; on a deliberately split mask it prunes.
    ScenarioConfig config = fast_config();
    config.area.keep_largest_component = true;
    EXPECT_NO_THROW(prepare_scenario(make_toy(), config));
}

TEST(ConfigVariants, TimeGridResolutionConsistency) {
    // Halving the step roughly preserves integrated yearly energy: the
    // generator's wall-time dynamics are resolution-rescaled, so only
    // realization noise remains (different RNG stream consumption), which
    // a full year averages down to a few percent.
    ScenarioConfig coarse = fast_config();
    coarse.grid = TimeGrid(60, 1, 365);
    ScenarioConfig fine = fast_config();
    fine.grid = TimeGrid(30, 1, 365);
    const double e_coarse = toy_energy(coarse);
    const double e_fine = toy_energy(fine);
    EXPECT_NEAR(e_coarse / e_fine, 1.0, 0.05);
}

TEST(ConfigVariants, WeatherOptionsReachTheGenerator) {
    ScenarioConfig sunny = fast_config();
    for (auto& p : sunny.weather.climate.p_clear) p = 0.9;
    for (auto& p : sunny.weather.climate.p_overcast) p = 0.05;
    ScenarioConfig gloomy = fast_config();
    for (auto& p : gloomy.weather.climate.p_clear) p = 0.05;
    for (auto& p : gloomy.weather.climate.p_overcast) p = 0.9;
    EXPECT_GT(toy_energy(sunny), 1.5 * toy_energy(gloomy));
}

}  // namespace
}  // namespace pvfp::core

/// End-to-end determinism of the parallel substrate: the full pipeline
/// (horizon sweep, irradiance precompute, suitability, placement,
/// evaluation) must produce *bitwise-identical* results at 1 and 8
/// threads, and the golden-toy anchors must keep holding.  This is the
/// ctest enforcement of the "deterministic at any parallelism" contract.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/parallel.hpp"

namespace pvfp::core {
namespace {

// Same golden values as test_golden_toy.cpp.
constexpr int kGoldenValidCells = 799;
constexpr int kGoldenPanelCount = 4;
constexpr double kGoldenEnergyKwh = 137.326;

struct ToyRun {
    PreparedScenario prepared;
    PlacementComparison cmp;
};

ToyRun run_toy_at(int threads) {
    set_thread_count(threads);
    core::ScenarioConfig config;
    config.grid = TimeGrid(60, 1, 73);
    config.weather.seed = 11;
    config.horizon.azimuth_sectors = 36;
    config.suitability.step_stride = 1;
    ToyRun run{prepare_scenario(make_toy(), config), {}};
    run.cmp = compare_placements(run.prepared, pv::Topology{2, 2});
    return run;
}

void expect_bitwise_equal(const EvaluationResult& a,
                          const EvaluationResult& b) {
    // EXPECT_EQ on doubles is deliberate: the contract is bitwise
    // identity, not tolerance.
    EXPECT_EQ(a.energy_kwh, b.energy_kwh);
    EXPECT_EQ(a.ideal_energy_kwh, b.ideal_energy_kwh);
    EXPECT_EQ(a.mismatch_loss_kwh, b.mismatch_loss_kwh);
    EXPECT_EQ(a.wiring_loss_kwh, b.wiring_loss_kwh);
    EXPECT_EQ(a.extra_cable_m, b.extra_cable_m);
    ASSERT_EQ(a.strings.size(), b.strings.size());
    for (std::size_t j = 0; j < a.strings.size(); ++j) {
        EXPECT_EQ(a.strings[j].energy_kwh, b.strings[j].energy_kwh);
        EXPECT_EQ(a.strings[j].wiring_loss_kwh,
                  b.strings[j].wiring_loss_kwh);
    }
}

TEST(ParallelDeterminism, FullPipelineBitwiseIdenticalAcrossThreadCounts) {
    const ToyRun one = run_toy_at(1);
    const ToyRun eight = run_toy_at(8);
    set_thread_count(0);

    // Identical derived data...
    EXPECT_EQ(one.prepared.area.valid_count, eight.prepared.area.valid_count);
    ASSERT_EQ(one.prepared.suitability.suitability.data().size(),
              eight.prepared.suitability.suitability.data().size());
    for (std::size_t i = 0;
         i < one.prepared.suitability.suitability.data().size(); ++i)
        EXPECT_EQ(one.prepared.suitability.suitability.data()[i],
                  eight.prepared.suitability.suitability.data()[i]);

    // ...identical placements...
    ASSERT_EQ(one.cmp.proposed.modules.size(),
              eight.cmp.proposed.modules.size());
    for (std::size_t i = 0; i < one.cmp.proposed.modules.size(); ++i)
        EXPECT_EQ(one.cmp.proposed.modules[i], eight.cmp.proposed.modules[i]);
    ASSERT_EQ(one.cmp.traditional.modules.size(),
              eight.cmp.traditional.modules.size());
    for (std::size_t i = 0; i < one.cmp.traditional.modules.size(); ++i)
        EXPECT_EQ(one.cmp.traditional.modules[i],
                  eight.cmp.traditional.modules[i]);

    // ...and bitwise-identical energies.
    expect_bitwise_equal(one.cmp.proposed_eval, eight.cmp.proposed_eval);
    expect_bitwise_equal(one.cmp.traditional_eval,
                         eight.cmp.traditional_eval);
}

TEST(ParallelDeterminism, GoldenToyAnchorsHoldUnderParallelism) {
    const ToyRun eight = run_toy_at(8);
    set_thread_count(0);
    EXPECT_EQ(eight.prepared.area.valid_count, kGoldenValidCells);
    EXPECT_EQ(eight.cmp.proposed.module_count(), kGoldenPanelCount);
    EXPECT_EQ(eight.cmp.traditional.module_count(), kGoldenPanelCount);
    EXPECT_NEAR(eight.cmp.proposed_eval.energy_kwh, kGoldenEnergyKwh,
                0.005 * kGoldenEnergyKwh);
}

TEST(ParallelDeterminism, BatchRunnerMatchesSequentialPipeline) {
    // run_scenarios must give the same results as prepare + compare by
    // hand, under both parallel policies.
    core::ScenarioConfig config;
    config.grid = TimeGrid(60, 172, 8);  // short horizon: keep it fast
    config.weather.seed = 11;
    config.horizon.azimuth_sectors = 36;

    BatchOptions batch;
    batch.topologies = {pv::Topology{2, 2}};

    const std::vector<RoofScenario> scenarios = {make_toy(),
                                                 make_toy(10.0, 6.0)};

    batch.policy = ParallelPolicy::OuterScenarios;
    const auto outer = run_scenarios(scenarios, config, batch);
    batch.policy = ParallelPolicy::InnerLoops;
    const auto inner = run_scenarios(scenarios, config, batch);

    ASSERT_EQ(outer.size(), scenarios.size());
    ASSERT_EQ(inner.size(), scenarios.size());
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const auto prepared = prepare_scenario(scenarios[i], config);
        const auto reference =
            compare_placements(prepared, batch.topologies[0]);
        ASSERT_EQ(outer[i].comparisons.size(), 1u);
        ASSERT_EQ(inner[i].comparisons.size(), 1u);
        expect_bitwise_equal(outer[i].comparisons[0].proposed_eval,
                             reference.proposed_eval);
        expect_bitwise_equal(inner[i].comparisons[0].proposed_eval,
                             reference.proposed_eval);
        EXPECT_EQ(outer[i].prepared.area.valid_count,
                  prepared.area.valid_count);
    }
}

}  // namespace
}  // namespace pvfp::core

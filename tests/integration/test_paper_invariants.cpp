/// End-to-end invariants mirroring DESIGN.md Section 7 ("success criteria
/// for reproduction") on fast coarse configurations, plus cross-substrate
/// consistency checks (weather round-trip through the full pipeline,
/// greedy vs random baselines).

#include <gtest/gtest.h>

#include <cstdio>

#include "../test_helpers.hpp"
#include "pvfp/core/pipeline.hpp"
#include "pvfp/util/rng.hpp"
#include "pvfp/weather/station_csv.hpp"

namespace pvfp::core {
namespace {

TEST(PaperInvariants, GreedyBeatsRandomPlacements) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const pv::Topology topo{2, 2};
    const auto greedy = place_greedy(p.area, p.suitability.suitability,
                                     p.geometry, topo);
    const auto greedy_eval =
        evaluate_floorplan(greedy, p.area, p.field, p.model);

    // Random feasible placements, rejection-sampled.
    const auto anchors = enumerate_anchors(p.area, p.geometry);
    Rng rng(123);
    int beaten = 0;
    int trials = 0;
    for (int t = 0; t < 12; ++t) {
        Floorplan plan;
        plan.geometry = p.geometry;
        plan.topology = topo;
        int guard = 0;
        while (plan.module_count() < topo.total() && guard < 10000) {
            ++guard;
            const auto& cand = anchors[static_cast<std::size_t>(
                rng.uniform_int(anchors.size()))];
            bool ok = true;
            for (const auto& m : plan.modules)
                if (modules_overlap(cand, m, p.geometry)) ok = false;
            if (ok) plan.modules.push_back(cand);
        }
        if (plan.module_count() != topo.total()) continue;
        ++trials;
        const auto eval = evaluate_floorplan(plan, p.area, p.field, p.model);
        if (greedy_eval.energy_kwh >= eval.energy_kwh) ++beaten;
    }
    ASSERT_GT(trials, 8);
    // The suitability-driven placement beats the large majority of
    // random feasible placements.
    EXPECT_GE(beaten, trials - 1);
}

TEST(PaperInvariants, WiringOverheadIsMarginal) {
    // Paper Section V-C: "both power and cost overheads are not an
    // issue" — wiring loss well below 1% of extracted energy.
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const auto cmp = compare_placements(p, pv::Topology{2, 2});
    EXPECT_LT(cmp.proposed_eval.wiring_loss_kwh,
              0.01 * cmp.proposed_eval.energy_kwh);
}

TEST(PaperInvariants, MismatchPlusNetEqualsIdealMinusWiring) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const auto cmp = compare_placements(p, pv::Topology{2, 2});
    const auto& e = cmp.proposed_eval;
    EXPECT_NEAR(e.energy_kwh + e.mismatch_loss_kwh + e.wiring_loss_kwh,
                e.ideal_energy_kwh, 1e-6);
}

TEST(PaperInvariants, ShadedRoofYieldsLessThanUnshadedBound) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const auto cmp = compare_placements(p, pv::Topology{2, 2});
    // Upper bound: every module at the unshaded plane irradiance with
    // per-module MPPT and no losses.
    double bound_kwh = 0.0;
    const double k = p.field.config().thermal_k;
    for (long s = 0; s < p.field.steps(); ++s) {
        if (!p.field.is_daylight(s)) continue;
        const double g = p.field.plane_irradiance_unshaded(s);
        const double t = p.field.air_temperature(s) + k * g;
        bound_kwh += 4.0 * p.model.power(g, t) *
                     p.field.time_grid().step_hours() / 1000.0;
    }
    EXPECT_LE(cmp.proposed_eval.energy_kwh, bound_kwh * 1.0001);
    EXPECT_GT(cmp.proposed_eval.energy_kwh, 0.5 * bound_kwh);
}

TEST(PaperInvariants, WeatherCsvRoundTripPreservesEnergy) {
    // Export the synthetic weather, re-import it, rebuild the field, and
    // check the evaluated energy matches to CSV precision — validating
    // the real-data ingestion path end to end.
    const solar::Location torino{45.07, 7.69, 1.0};
    const TimeGrid grid(60, 100, 20);
    weather::SyntheticWeatherOptions wopt;
    wopt.seed = 31;
    const auto env = weather::generate_synthetic_weather(torino, grid, wopt);

    const std::string path = ::testing::TempDir() + "/pvfp_roundtrip.csv";
    weather::write_station_csv(path, env, grid);
    const auto back = weather::read_station_csv(path, grid);
    std::remove(path.c_str());

    geo::Raster dsm(12, 6, 0.2, 5.0);
    const auto build_field = [&](std::vector<solar::EnvSample> e) {
        geo::HorizonOptions hopt;
        hopt.azimuth_sectors = 16;
        geo::HorizonMap horizon(dsm, 0, 0, 12, 6, hopt);
        return solar::IrradianceField(std::move(horizon), std::move(e),
                                      grid, deg2rad(26.0), deg2rad(180.0));
    };
    const auto field_a = build_field(env);
    const auto field_b = build_field(back);

    const auto area = pvfp::testing::flat_area(12, 6);
    Floorplan plan;
    plan.geometry = {4, 2};
    plan.topology = {2, 1};
    plan.modules = {{0, 0}, {4, 0}};
    const pv::EmpiricalModuleModel model;
    const auto ea = evaluate_floorplan(plan, area, field_a, model);
    const auto eb = evaluate_floorplan(plan, area, field_b, model);
    EXPECT_NEAR(ea.energy_kwh, eb.energy_kwh, 0.05);
}

TEST(PaperInvariants, SeedChangesWeatherButNotFeasibility) {
    core::ScenarioConfig config;
    config.grid = TimeGrid(120, 1, 37);
    config.horizon.azimuth_sectors = 24;
    config.weather.seed = 1;
    const auto a = prepare_scenario(make_toy(), config);
    config.weather.seed = 2;
    const auto b = prepare_scenario(make_toy(), config);
    // Same geometry...
    EXPECT_EQ(a.area.valid_count, b.area.valid_count);
    // ...different skies...
    EXPECT_NE(a.suitability.g_percentile(2, 2),
              b.suitability.g_percentile(2, 2));
    // ...both place fine.
    const auto ca = compare_placements(a, pv::Topology{2, 2});
    const auto cb = compare_placements(b, pv::Topology{2, 2});
    EXPECT_GT(ca.proposed_eval.energy_kwh, 0.0);
    EXPECT_GT(cb.proposed_eval.energy_kwh, 0.0);
}

/// Parameterized sweep: every paper roof prepares and hosts both paper
/// module counts on a coarse grid (fast smoke of the full campaign).
class PaperRoofSweep : public ::testing::TestWithParam<int> {};

TEST_P(PaperRoofSweep, PreparesAndPlaces) {
    const int roof_idx = GetParam();
    core::ScenarioConfig config;
    config.grid = TimeGrid(120, 1, 31);  // fast: 31 days, 2 h steps
    config.horizon.azimuth_sectors = 24;
    config.suitability.step_stride = 2;
    auto roofs = make_paper_roofs();
    const auto prepared = prepare_scenario(
        roofs[static_cast<std::size_t>(roof_idx)], config);
    for (const int n : {16, 32}) {
        const auto cmp =
            compare_placements(prepared, pv::Topology{8, n / 8});
        EXPECT_EQ(cmp.proposed.module_count(), n);
        std::string why;
        EXPECT_TRUE(floorplan_feasible(cmp.proposed, prepared.area, &why))
            << why;
        EXPECT_GT(cmp.proposed_eval.energy_kwh, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllRoofs, PaperRoofSweep,
                         ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace pvfp::core

/// Cross-module property sweeps (TEST_P): physics invariants of the
/// solar chain over broad parameter grids, wiring-model geometry
/// properties, and placer invariants on randomized masked areas.

#include <gtest/gtest.h>

#include <cmath>

#include "../test_helpers.hpp"
#include "pvfp/core/compact_placer.hpp"
#include "pvfp/core/greedy_placer.hpp"
#include "pvfp/pv/wiring.hpp"
#include "pvfp/solar/clearsky.hpp"
#include "pvfp/solar/decomposition.hpp"
#include "pvfp/solar/transposition.hpp"
#include "pvfp/util/rng.hpp"

namespace pvfp {
namespace {

// ------------------------------------------------ solar chain sweep --

struct SolarCase {
    int doy;
    double elevation_deg;
    double linke;
};

class SolarChain : public ::testing::TestWithParam<SolarCase> {};

TEST_P(SolarChain, ClearSkyDecomposeTransposeInvariants) {
    const auto [doy, el_deg, linke] = GetParam();
    const double el = deg2rad(el_deg);

    // Clear sky is physical.
    const auto cs = solar::esra_clear_sky(el, doy, linke);
    EXPECT_GE(cs.dni, 0.0);
    EXPECT_GE(cs.dhi, 0.0);
    EXPECT_LT(cs.dni, solar::extraterrestrial_normal_irradiance(doy));
    EXPECT_NEAR(cs.ghi, cs.dni * std::sin(el) + cs.dhi, 1e-9);

    // Decomposing the clear-sky GHI approximately recovers a beam-heavy
    // split (closure always exact).
    const auto d = solar::decompose_erbs(cs.ghi, el, doy);
    EXPECT_NEAR(d.dni * std::sin(el) + d.dhi, cs.ghi, 1e-9);

    // Transposing onto a south 26-deg plane conserves non-negativity and
    // the horizontal identity at tilt 0.
    const solar::SunPosition sun{deg2rad(180.0), el};
    for (const auto model :
         {solar::SkyModel::Isotropic, solar::SkyModel::HayDavies}) {
        const auto flat = solar::transpose(model, cs.dni, cs.dhi, cs.ghi,
                                           sun, 0.0, 0.0, 0.2, doy);
        EXPECT_NEAR(flat.beam + flat.sky_diffuse, cs.ghi, 1e-6);
        const auto tilted =
            solar::transpose(model, cs.dni, cs.dhi, cs.ghi, sun,
                             deg2rad(26.0), deg2rad(180.0), 0.2, doy);
        EXPECT_GE(tilted.beam, 0.0);
        EXPECT_GE(tilted.sky_diffuse, 0.0);
        EXPECT_GE(tilted.ground_reflected, 0.0);
        // South tilt increases beam capture whenever the sun is south and
        // below the complement of the tilt.
        if (el_deg < 64.0) {
            EXPECT_GT(tilted.beam, flat.beam * 0.999);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SolarChain,
    ::testing::Values(SolarCase{15, 15.0, 2.5}, SolarCase{15, 30.0, 3.5},
                      SolarCase{80, 25.0, 3.0}, SolarCase{80, 45.0, 4.5},
                      SolarCase{172, 20.0, 2.0}, SolarCase{172, 60.0, 3.9},
                      SolarCase{265, 40.0, 5.0}, SolarCase{355, 12.0, 2.6},
                      SolarCase{355, 21.0, 7.0}));

// ------------------------------------------------- wiring properties --

class WiringProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WiringProps, TranslationInvariantAndMonotoneUnderStretch) {
    Rng rng(GetParam());
    const pv::WiringSpec spec;
    std::vector<pv::ModulePosition> string_modules;
    for (int i = 0; i < 6; ++i)
        string_modules.push_back(
            {rng.uniform(0.0, 30.0), rng.uniform(0.0, 10.0)});

    const double base = pv::string_extra_length(string_modules, spec);
    EXPECT_GE(base, 0.0);

    // Translation invariance.
    auto shifted = string_modules;
    for (auto& m : shifted) {
        m.x_m += 13.7;
        m.y_m -= 4.2;
    }
    EXPECT_NEAR(pv::string_extra_length(shifted, spec), base, 1e-9);

    // Uniform stretch about the first module never shortens the cable.
    auto stretched = string_modules;
    for (auto& m : stretched) {
        m.x_m = string_modules[0].x_m + 1.5 * (m.x_m - string_modules[0].x_m);
        m.y_m = string_modules[0].y_m + 1.5 * (m.y_m - string_modules[0].y_m);
    }
    EXPECT_GE(pv::string_extra_length(stretched, spec) + 1e-9, base);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WiringProps,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ------------------------------------------- placer invariant sweep --

class PlacerOnRandomMasks : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlacerOnRandomMasks, GreedyAndCompactInvariants) {
    Rng rng(GetParam());
    // Random mask: start fully valid, knock out random blobs (~25%).
    Grid2D<unsigned char> mask(36, 14, 1);
    for (int blob = 0; blob < 6; ++blob) {
        const int cx = static_cast<int>(rng.uniform_int(36));
        const int cy = static_cast<int>(rng.uniform_int(14));
        const int r = 1 + static_cast<int>(rng.uniform_int(3));
        for (int y = std::max(0, cy - r); y < std::min(14, cy + r); ++y)
            for (int x = std::max(0, cx - r); x < std::min(36, cx + r); ++x)
                mask(x, y) = 0;
    }
    const auto area = pvfp::testing::masked_area(mask);
    Grid2D<double> s(36, 14);
    for (auto& v : s.data()) v = rng.uniform(50.0, 500.0);

    const core::PanelGeometry g{4, 2};
    const pv::Topology topo{2, 2};
    const auto anchors = core::enumerate_anchors(area, g);
    if (static_cast<int>(anchors.size()) < topo.total()) GTEST_SKIP();

    try {
        const auto greedy = core::place_greedy(area, s, g, topo);
        std::string why;
        EXPECT_TRUE(core::floorplan_feasible(greedy, area, &why)) << why;
        EXPECT_EQ(greedy.module_count(), 4);
        // Determinism.
        const auto again = core::place_greedy(area, s, g, topo);
        EXPECT_EQ(greedy.modules, again.modules);
    } catch (const Infeasible&) {
        // Anchor count can exceed N while no non-overlapping combination
        // exists; acceptable outcome for adversarial masks.
    }

    try {
        const auto compact = core::place_compact(area, s, g, topo);
        std::string why;
        EXPECT_TRUE(core::floorplan_feasible(compact.plan, area, &why))
            << why;
    } catch (const Infeasible&) {
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacerOnRandomMasks,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 111));

}  // namespace
}  // namespace pvfp

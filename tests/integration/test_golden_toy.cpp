/// Golden regression anchor for the cached coarse toy scenario.
///
/// Pins the three quantities every future optimization PR must preserve:
/// the suitable-area cell count (GIS extraction), the placed panel count
/// (floorplanner), and the total energy of the proposed plan plus its
/// annualized extrapolation (irradiance + electrical models).  Tolerances
/// are tight enough to catch an accidental model/default/RNG change but
/// loose enough to survive benign floating-point reassociation.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/pipeline.hpp"

namespace pvfp::core {
namespace {

// Golden values measured on the seed implementation (TimeGrid(60, 1, 73),
// weather seed 11, 36 horizon sectors).  Any deliberate change to the
// defaults, models, or RNG stream must update them consciously.
constexpr int kGoldenValidCells = 799;
constexpr int kGoldenPanelCount = 4;
constexpr double kGoldenEnergyKwh = 137.326;

/// compare_placements is the expensive step; run it once per binary like
/// the scenario fixture itself.
const PlacementComparison& toy_comparison() {
    static const PlacementComparison cmp = compare_placements(
        pvfp::testing::coarse_toy_scenario(), pv::Topology{2, 2});
    return cmp;
}

TEST(GoldenToy, SuitableAreaCellCount) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    EXPECT_EQ(p.area.valid_count, kGoldenValidCells);
    // The mask agrees with its cached count.
    int counted = 0;
    for (const auto v : p.area.valid.data())
        if (v) ++counted;
    EXPECT_EQ(counted, p.area.valid_count);
}

TEST(GoldenToy, PanelCountAndEnergy) {
    const PlacementComparison& cmp = toy_comparison();
    EXPECT_EQ(cmp.proposed.module_count(), kGoldenPanelCount);
    EXPECT_EQ(cmp.traditional.module_count(), kGoldenPanelCount);
    // 0.5% relative tolerance: generous for FP noise, far below any
    // meaningful model change.
    EXPECT_NEAR(cmp.proposed_eval.energy_kwh, kGoldenEnergyKwh,
                0.005 * kGoldenEnergyKwh);
}

TEST(GoldenToy, AnnualizedEnergyStaysPhysical) {
    // The 73-day horizon extrapolates to a plausible Torino annual yield
    // per 165 Wp module; anchors the absolute scale of the synthetic
    // climate independently of the exact golden value.
    const PlacementComparison& cmp = toy_comparison();
    const double per_module_annual_kwh = cmp.proposed_eval.energy_kwh /
                                         kGoldenPanelCount * (365.0 / 73.0);
    EXPECT_GT(per_module_annual_kwh, 90.0);
    EXPECT_LT(per_module_annual_kwh, 320.0);
}

}  // namespace
}  // namespace pvfp::core

/// Golden regression anchor for the cached coarse toy scenario.
///
/// Pins the three quantities every future optimization PR must preserve:
/// the suitable-area cell count (GIS extraction), the placed panel count
/// (floorplanner), and the total energy of the proposed plan plus its
/// annualized extrapolation (irradiance + electrical models).  Tolerances
/// are tight enough to catch an accidental model/default/RNG change but
/// loose enough to survive benign floating-point reassociation.

#include <gtest/gtest.h>

#include "../test_helpers.hpp"
#include "pvfp/core/incremental_evaluator.hpp"
#include "pvfp/core/pipeline.hpp"

namespace pvfp::core {
namespace {

// Golden values measured on the seed implementation (TimeGrid(60, 1, 73),
// weather seed 11, 36 horizon sectors).  Any deliberate change to the
// defaults, models, or RNG stream must update them consciously.
constexpr int kGoldenValidCells = 799;
constexpr int kGoldenPanelCount = 4;
constexpr double kGoldenEnergyKwh = 137.326;

/// compare_placements is the expensive step; run it once per binary like
/// the scenario fixture itself.
const PlacementComparison& toy_comparison() {
    static const PlacementComparison cmp = compare_placements(
        pvfp::testing::coarse_toy_scenario(), pv::Topology{2, 2});
    return cmp;
}

TEST(GoldenToy, SuitableAreaCellCount) {
    const auto& p = pvfp::testing::coarse_toy_scenario();
    EXPECT_EQ(p.area.valid_count, kGoldenValidCells);
    // The mask agrees with its cached count.
    int counted = 0;
    for (const auto v : p.area.valid.data())
        if (v) ++counted;
    EXPECT_EQ(counted, p.area.valid_count);
}

TEST(GoldenToy, PanelCountAndEnergy) {
    const PlacementComparison& cmp = toy_comparison();
    EXPECT_EQ(cmp.proposed.module_count(), kGoldenPanelCount);
    EXPECT_EQ(cmp.traditional.module_count(), kGoldenPanelCount);
    // 0.5% relative tolerance: generous for FP noise, far below any
    // meaningful model change.
    EXPECT_NEAR(cmp.proposed_eval.energy_kwh, kGoldenEnergyKwh,
                0.005 * kGoldenEnergyKwh);
}

TEST(GoldenToy, IncrementalFullPassMatchesPinnedEnergy) {
    // The IncrementalEvaluator's cached one-time full pass must land on
    // the same totals as the pinned evaluate_floorplan result — both
    // against the fresh full evaluation (tight, the delta-equivalence
    // contract) and against the golden constant (loose, the regression
    // anchor).
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const PlacementComparison& cmp = toy_comparison();
    const IncrementalEvaluator ev(cmp.proposed, p.area, p.field, p.model);
    EXPECT_NEAR(ev.energy_kwh(), cmp.proposed_eval.energy_kwh, 1e-9);
    EXPECT_NEAR(ev.energy_kwh(), kGoldenEnergyKwh,
                0.005 * kGoldenEnergyKwh);
    const EvaluationResult inc = ev.result();
    EXPECT_NEAR(inc.ideal_energy_kwh, cmp.proposed_eval.ideal_energy_kwh,
                1e-9);
    EXPECT_NEAR(inc.mismatch_loss_kwh, cmp.proposed_eval.mismatch_loss_kwh,
                1e-9);
    EXPECT_NEAR(inc.wiring_loss_kwh, cmp.proposed_eval.wiring_loss_kwh,
                1e-9);
    EXPECT_NEAR(inc.extra_cable_m, cmp.proposed_eval.extra_cable_m, 1e-12);
}

TEST(GoldenToy, IncrementalCommittedMoveSequencePinned) {
    // One deterministic committed move/swap/rollback sequence on the
    // proposed plan: every committed state must match a fresh full
    // evaluation exactly (<= 1e-9 kWh), and the final energy is pinned
    // like the other golden values.
    const auto& p = pvfp::testing::coarse_toy_scenario();
    const PlacementComparison& cmp = toy_comparison();
    IncrementalEvaluator ev(cmp.proposed, p.area, p.field, p.model);

    const auto check_against_full = [&] {
        const EvaluationResult full = evaluate_floorplan(
            ev.plan(), p.area, p.field, p.model, ev.options());
        EXPECT_NEAR(ev.energy_kwh(), full.energy_kwh, 1e-9);
    };

    // Move module 0 to the first feasible anchor that is not its own.
    const auto anchors = enumerate_anchors(p.area, cmp.proposed.geometry);
    ASSERT_FALSE(anchors.empty());
    bool moved = false;
    for (const ModulePlacement& a : anchors) {
        if (a == ev.plan().modules[0]) continue;
        if (!ev.move_feasible(0, a)) continue;
        ev.delta_move(0, a);
        ev.commit();
        moved = true;
        break;
    }
    ASSERT_TRUE(moved);
    check_against_full();

    ev.delta_swap(0, 3);
    ev.commit();
    check_against_full();

    // A rolled-back proposal leaves the committed state untouched.
    const double before_rollback = ev.energy_kwh();
    ev.delta_swap(1, 2);
    ev.rollback();
    EXPECT_EQ(ev.energy_kwh(), before_rollback);
    check_against_full();

    // Pinned endpoint of the sequence (measured on the seed
    // implementation, same contract as kGoldenEnergyKwh).
    constexpr double kGoldenMovedKwh = 135.521;
    EXPECT_NEAR(ev.energy_kwh(), kGoldenMovedKwh, 0.005 * kGoldenMovedKwh);
}

TEST(GoldenToy, AnnualizedEnergyStaysPhysical) {
    // The 73-day horizon extrapolates to a plausible Torino annual yield
    // per 165 Wp module; anchors the absolute scale of the synthetic
    // climate independently of the exact golden value.
    const PlacementComparison& cmp = toy_comparison();
    const double per_module_annual_kwh = cmp.proposed_eval.energy_kwh /
                                         kGoldenPanelCount * (365.0 / 73.0);
    EXPECT_GT(per_module_annual_kwh, 90.0);
    EXPECT_LT(per_module_annual_kwh, 320.0);
}

}  // namespace
}  // namespace pvfp::core

#pragma once
/// \file test_helpers.hpp
/// Shared fixtures for the pvfp test suite: small placement areas,
/// synthetic irradiance fields, and a cached coarse toy scenario so that
/// expensive preparation happens once per binary.

#include <vector>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/geo/suitable_area.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::testing {

/// A fully-valid placement area of the given size (flat, 26 deg S roof).
inline geo::PlacementArea flat_area(int width, int height,
                                    double cell_size = 0.2) {
    geo::PlacementArea area;
    area.width = width;
    area.height = height;
    area.valid = Grid2D<unsigned char>(width, height, 1);
    area.cell_size = cell_size;
    area.tilt_rad = deg2rad(26.0);
    area.azimuth_rad = deg2rad(180.0);
    area.valid_count = width * height;
    return area;
}

/// Area with the given mask (1 = valid).
inline geo::PlacementArea masked_area(const Grid2D<unsigned char>& mask,
                                      double cell_size = 0.2) {
    geo::PlacementArea area;
    area.width = mask.width();
    area.height = mask.height();
    area.valid = mask;
    area.cell_size = cell_size;
    area.tilt_rad = deg2rad(26.0);
    area.azimuth_rad = deg2rad(180.0);
    area.valid_count = 0;
    for (const auto v : mask.data())
        if (v) ++area.valid_count;
    return area;
}

/// A small coarse time grid: \p days days of hourly steps starting at the
/// summer solstice (long daylight keeps tests meaningful and fast).
inline TimeGrid coarse_grid(int days = 8, int minutes = 60) {
    return TimeGrid(minutes, /*start_day=*/172, days);
}

/// A constant-weather series (clear, warm) for a grid.
inline std::vector<solar::EnvSample> constant_weather(const TimeGrid& grid,
                                                      double ghi = 600.0,
                                                      double dni = 500.0,
                                                      double dhi = 180.0,
                                                      double temp = 22.0) {
    return std::vector<solar::EnvSample>(
        static_cast<std::size_t>(grid.total_steps()),
        solar::EnvSample{ghi, dni, dhi, temp});
}

/// IrradianceField over a flat DSM (uniform field: svf = 1, no shadows).
inline solar::IrradianceField flat_field(int width, int height,
                                         const TimeGrid& grid,
                                         std::vector<solar::EnvSample> env,
                                         double tilt_deg = 26.0,
                                         double azimuth_deg = 180.0) {
    geo::Raster dsm(width, height, 0.2, /*fill=*/5.0);
    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 16;  // flat: horizons are all zero anyway
    hopt.max_distance = 5.0;
    geo::HorizonMap horizon(dsm, 0, 0, width, height, hopt);
    return solar::IrradianceField(std::move(horizon), std::move(env), grid,
                                  deg2rad(tilt_deg), deg2rad(azimuth_deg));
}

/// A small scenario with real spatial structure — a chimney and an
/// eastern ridge cast shadows, and the chimney cells are keep-out — so
/// relocating a module genuinely changes the energy objective (a flat
/// uniform field would only exercise the wiring term).  Shared by the
/// incremental-evaluator, annealing, and optimal-placer suites.
struct ShadedSetup {
    geo::PlacementArea area;
    solar::IrradianceField field;
    pv::EmpiricalModuleModel model;
};

inline ShadedSetup shaded_setup(int days = 4, int w = 24, int h = 10) {
    const TimeGrid grid = coarse_grid(days);
    auto env = constant_weather(grid);
    geo::Raster dsm(w, h, 0.2, 5.0);
    for (int y = 4; y < 6 && y < h; ++y)
        for (int x = 10; x < 12 && x < w; ++x) dsm(x, y) = 7.0;  // chimney
    for (int y = 0; y < h; ++y)
        for (int x = w - 2; x < w; ++x) dsm(x, y) = 9.0;  // eastern ridge
    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 16;
    hopt.max_distance = 10.0;
    geo::HorizonMap horizon(dsm, 0, 0, w, h, hopt);
    solar::IrradianceField field(std::move(horizon), std::move(env), grid,
                                 deg2rad(26.0), deg2rad(180.0));
    Grid2D<unsigned char> mask(w, h, 1);
    for (int y = 4; y < 6 && y < h; ++y)
        for (int x = 10; x < 12 && x < w; ++x) mask(x, y) = 0;
    return ShadedSetup{masked_area(mask), std::move(field),
                       pv::EmpiricalModuleModel{}};
}

/// The toy scenario prepared with a coarse (fast) configuration, cached
/// per test binary.
inline const core::PreparedScenario& coarse_toy_scenario() {
    static const core::PreparedScenario prepared = [] {
        core::ScenarioConfig config;
        config.grid = TimeGrid(60, 1, 73);  // ~5x faster than a full year
        config.weather.seed = 11;
        config.horizon.azimuth_sectors = 36;
        config.suitability.step_stride = 1;
        return core::prepare_scenario(core::make_toy(), config);
    }();
    return prepared;
}

}  // namespace pvfp::testing

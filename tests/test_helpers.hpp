#pragma once
/// \file test_helpers.hpp
/// Shared fixtures for the pvfp test suite: small placement areas,
/// synthetic irradiance fields, and a cached coarse toy scenario so that
/// expensive preparation happens once per binary.

#include <vector>

#include "pvfp/core/pipeline.hpp"
#include "pvfp/geo/suitable_area.hpp"
#include "pvfp/solar/irradiance.hpp"
#include "pvfp/util/grid2d.hpp"

namespace pvfp::testing {

/// A fully-valid placement area of the given size (flat, 26 deg S roof).
inline geo::PlacementArea flat_area(int width, int height,
                                    double cell_size = 0.2) {
    geo::PlacementArea area;
    area.width = width;
    area.height = height;
    area.valid = Grid2D<unsigned char>(width, height, 1);
    area.cell_size = cell_size;
    area.tilt_rad = deg2rad(26.0);
    area.azimuth_rad = deg2rad(180.0);
    area.valid_count = width * height;
    return area;
}

/// Area with the given mask (1 = valid).
inline geo::PlacementArea masked_area(const Grid2D<unsigned char>& mask,
                                      double cell_size = 0.2) {
    geo::PlacementArea area;
    area.width = mask.width();
    area.height = mask.height();
    area.valid = mask;
    area.cell_size = cell_size;
    area.tilt_rad = deg2rad(26.0);
    area.azimuth_rad = deg2rad(180.0);
    area.valid_count = 0;
    for (const auto v : mask.data())
        if (v) ++area.valid_count;
    return area;
}

/// A small coarse time grid: \p days days of hourly steps starting at the
/// summer solstice (long daylight keeps tests meaningful and fast).
inline TimeGrid coarse_grid(int days = 8, int minutes = 60) {
    return TimeGrid(minutes, /*start_day=*/172, days);
}

/// A constant-weather series (clear, warm) for a grid.
inline std::vector<solar::EnvSample> constant_weather(const TimeGrid& grid,
                                                      double ghi = 600.0,
                                                      double dni = 500.0,
                                                      double dhi = 180.0,
                                                      double temp = 22.0) {
    return std::vector<solar::EnvSample>(
        static_cast<std::size_t>(grid.total_steps()),
        solar::EnvSample{ghi, dni, dhi, temp});
}

/// IrradianceField over a flat DSM (uniform field: svf = 1, no shadows).
inline solar::IrradianceField flat_field(int width, int height,
                                         const TimeGrid& grid,
                                         std::vector<solar::EnvSample> env,
                                         double tilt_deg = 26.0,
                                         double azimuth_deg = 180.0) {
    geo::Raster dsm(width, height, 0.2, /*fill=*/5.0);
    geo::HorizonOptions hopt;
    hopt.azimuth_sectors = 16;  // flat: horizons are all zero anyway
    hopt.max_distance = 5.0;
    geo::HorizonMap horizon(dsm, 0, 0, width, height, hopt);
    return solar::IrradianceField(std::move(horizon), std::move(env), grid,
                                  deg2rad(tilt_deg), deg2rad(azimuth_deg));
}

/// The toy scenario prepared with a coarse (fast) configuration, cached
/// per test binary.
inline const core::PreparedScenario& coarse_toy_scenario() {
    static const core::PreparedScenario prepared = [] {
        core::ScenarioConfig config;
        config.grid = TimeGrid(60, 1, 73);  // ~5x faster than a full year
        config.weather.seed = 11;
        config.horizon.azimuth_sectors = 36;
        config.suitability.step_stride = 1;
        return core::prepare_scenario(core::make_toy(), config);
    }();
    return prepared;
}

}  // namespace pvfp::testing
